#include "chaos/harness.h"

#include <optional>
#include <set>

#include "apps/acl_compiler.h"
#include "common/logging.h"
#include "net/network.h"
#include "scheduler/reconciler.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"
#include "workload/classbench.h"
#include "workload/scenarios.h"

namespace tango::chaos {

switchsim::SwitchProfile quiet_profile(switchsim::SwitchProfile profile) {
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  return profile;
}

namespace {

namespace profiles = switchsim::profiles;

void preinstall(net::Network& net, SwitchId id, std::uint32_t count) {
  core::ProbeEngine probe(net, id);
  for (std::uint32_t i = 0; i < count; ++i) {
    probe.install(i, static_cast<std::uint16_t>(100 + (i * 7) % 900));
  }
  net.barrier_sync(id);
}

}  // namespace

bool build_workload(const ChaosSpec& spec, net::Network& net,
                    const workload::TestbedIds& tb, sched::RequestDag& dag) {
  const auto params = params_of(spec.horizon);
  const auto n = static_cast<std::uint32_t>(params.workload_size);
  Rng rng(spec.seed * 7919 + 17);
  switch (spec.workload) {
    case Workload::kFig10:
      preinstall(net, tb.s1, n);
      dag = workload::link_failure_scenario(tb, n, rng, 0);
      return true;
    case Workload::kTrafficEngineering:
      preinstall(net, tb.s1, n);
      preinstall(net, tb.s2, n);
      preinstall(net, tb.s3, n);
      // existing_flows == n_requests, so every MOD/DEL hits a distinct
      // preinstalled index — the journal's no-rule-races assumption holds.
      dag = workload::traffic_engineering_scenario(tb, n, 2, 1, 1, rng,
                                                   /*first_index=*/1000, n);
      return true;
    case Workload::kAcl: {
      workload::ClassbenchProfile profile;
      profile.name = "chaos";
      profile.n_rules = params.workload_size;
      profile.seed = spec.seed;
      apps::AclCompileOptions opts;
      opts.target = tb.s1;
      opts.consistent = true;
      dag = apps::compile_acl(workload::generate_classbench(profile), opts).dag;
      return false;
    }
  }
  return true;
}

namespace {

/// True for semantic (switch-model) faults, false for wire faults.
bool is_misbehavior(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSilentInstallDrop:
    case FaultKind::kStaleFlowStats:
    case FaultKind::kSpuriousFlowRemoved:
    case FaultKind::kPriorityInversion:
    case FaultKind::kLatencyDrift:
    case FaultKind::kCapacityShrink:
      return true;
    case FaultKind::kCrash:
    case FaultKind::kStall:
    case FaultKind::kPartition:
    case FaultKind::kLossBurst:
      return false;
  }
  return false;
}

switchsim::MisbehaviorKind misbehavior_kind_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSilentInstallDrop:
      return switchsim::MisbehaviorKind::kSilentInstallDrop;
    case FaultKind::kStaleFlowStats:
      return switchsim::MisbehaviorKind::kStaleFlowStats;
    case FaultKind::kSpuriousFlowRemoved:
      return switchsim::MisbehaviorKind::kSpuriousFlowRemoved;
    case FaultKind::kPriorityInversion:
      return switchsim::MisbehaviorKind::kPriorityInversion;
    case FaultKind::kLatencyDrift:
      return switchsim::MisbehaviorKind::kLatencyDrift;
    default:
      return switchsim::MisbehaviorKind::kCapacityShrink;
  }
}

/// Lower the schedule onto per-switch injector configs, offsets rebased to
/// absolute times at `t0` (commit start). Misbehavior events are not wire
/// faults; they are lowered separately onto switchsim::MisbehaviorProfile.
net::FaultConfig config_for(const ChaosSchedule& schedule, SwitchId id,
                            SimTime t0) {
  net::FaultConfig cfg;
  cfg.drop_to_switch = schedule.base_loss;
  cfg.drop_to_controller = schedule.base_loss;
  cfg.seed = schedule.spec.seed * 1000003 + id;
  for (const auto& ev : schedule.events) {
    if (ev.target != id || is_misbehavior(ev.kind)) continue;
    switch (ev.kind) {
      case FaultKind::kCrash:
        cfg.crashes.push_back({t0 + ev.at, ev.duration});
        break;
      case FaultKind::kStall:
        cfg.stalls.push_back({t0 + ev.at, ev.duration});
        break;
      case FaultKind::kPartition:
        cfg.partitions.push_back({t0 + ev.at, ev.duration});
        break;
      case FaultKind::kLossBurst:
        cfg.loss_bursts.push_back({t0 + ev.at, ev.duration, ev.drop, ev.drop});
        break;
      default:
        break;
    }
  }
  return cfg;
}

}  // namespace

/// Chaos runs adopt synthetic knowledge so the knowledge-health loop starts
/// from accurate priors and every post-drift divergence is attributable to
/// the schedule.
core::SwitchKnowledge synthetic_knowledge(net::Network& net, SwitchId id) {
  const auto& profile = net.sw(id).profile();
  core::SwitchKnowledge know;
  know.switch_id = id;
  know.name = profile.name;
  std::size_t total = 0;
  for (const auto& lvl : profile.cache_levels) total += lvl.capacity_slots;
  know.sizes.installed = total;
  know.sizes.hit_rule_cap = false;
  if (!profile.cache_levels.empty()) {
    know.sizes.layer_sizes.push_back(
        static_cast<double>(profile.cache_levels.front().capacity_slots));
  }
  // Per-rule batched costs: base + the amortized message overhead a
  // same-type run pays (LatencyModel::flow_mod_cost with batching active).
  const auto& c = profile.costs;
  const double overhead_ms = c.batch_factor * c.msg_overhead.ms();
  know.costs.add_ascending_ms = c.add_base.ms() + overhead_ms;
  know.costs.add_descending_ms = c.add_base.ms() + overhead_ms;
  know.costs.add_same_priority_ms = c.add_same_priority.ms() + overhead_ms;
  know.costs.add_random_ms = c.add_base.ms() + overhead_ms;
  know.costs.mod_ms = c.mod_base.ms() + overhead_ms;
  know.costs.del_ms = c.del_base.ms() + overhead_ms;
  return know;
}

// --- fingerprint ------------------------------------------------------------

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

void fnv_fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void fnv_fold_str(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  fnv_fold(h, s.size());
}

namespace {

// Local aliases keep the (frozen) fingerprint definition readable.
constexpr auto& fold = fnv_fold;
constexpr auto& fold_str = fnv_fold_str;

std::uint64_t fingerprint_of(const ChaosResult& r,
                             const std::map<SwitchId, sched::TableImage>& tables) {
  std::uint64_t h = kFnvOffsetBasis;
  const auto& exec = r.report.exec;
  fold(h, static_cast<std::uint64_t>(exec.makespan.ns()));
  fold(h, exec.issued);
  fold(h, exec.rejected);
  fold(h, exec.timeouts);
  fold(h, exec.retries);
  fold(h, exec.echo_probes);
  fold(h, exec.failed_requests);
  fold(h, exec.lost_requests);
  fold(h, r.report.committed ? 1 : 0);
  fold(h, r.report.reconciled ? 1 : 0);
  fold(h, r.report.reconcile_rounds);
  fold(h, r.report.repairs_issued);
  fold(h, r.report.stale_rules_removed);
  fold(h, r.report.readback_requests);
  fold(h, r.report.readback_lost);
  for (const auto& [id, stats] : r.fault_stats) {
    fold(h, id);
    fold(h, stats.dropped_to_switch);
    fold(h, stats.dropped_to_controller);
    fold(h, stats.duplicated);
    fold(h, stats.reordered);
    fold(h, stats.corrupted);
    fold(h, stats.undecodable);
    fold(h, stats.notifications_dropped);
    fold(h, stats.lost_to_crash);
    fold(h, stats.lost_to_down);
    fold(h, stats.stalls);
    fold(h, stats.crashes);
    fold(h, stats.partitions);
    fold(h, stats.lost_to_partition);
  }
  for (const auto& [id, image] : tables) {
    fold(h, id);
    for (const auto& [key, rule] : image) {
      fold_str(h, key);
      fold(h, rule.cookie);
      fold(h, rule.priority);
      fold(h, rule.actions.size());
      fold(h, of::output_port(rule.actions));
    }
  }
  // Misbehavior-mode folds — all empty for wire-fault-only specs, so their
  // frozen v1 fingerprints are unchanged.
  for (const auto& [id, n] : r.report.readback_mismatches) {
    fold(h, id);
    fold(h, n);
  }
  for (const auto& [id, m] : r.misbehavior_stats) {
    fold(h, id);
    fold(h, m.events_activated);
    fold(h, m.silent_drops);
    fold(h, m.stale_stats_replies);
    fold(h, m.spurious_removals);
    fold(h, m.priority_inversions);
    fold(h, m.latency_drifts);
    fold(h, m.capacity_shrinks);
    fold(h, m.entries_evicted);
  }
  for (const auto& act : r.sentinel) {
    fold(h, act.switch_id);
    fold(h, (act.probed ? 1u : 0u) | (act.confirmed ? 2u : 0u) |
                (act.reinferred ? 4u : 0u) | (act.quarantined ? 8u : 0u));
  }
  fold(h, static_cast<std::uint64_t>(r.end_time.ns()));
  return h;
}

}  // namespace

std::vector<std::string> ChaosResult::violation_names() const {
  std::vector<std::string> out;
  for (const auto& v : violations) {
    bool seen = false;
    for (const auto& name : out) seen = seen || name == v.oracle;
    if (!seen) out.push_back(v.oracle);
  }
  return out;
}

ChaosResult run_chaos(const ChaosSchedule& schedule) {
  ChaosResult out;
  out.schedule = schedule;
  const auto& spec = schedule.spec;

  net::Network net;
  workload::TestbedIds tb;
  tb.s1 = net.add_switch(quiet_profile(profiles::switch1()));
  tb.s2 = net.add_switch(quiet_profile(profiles::switch1()));
  tb.s3 = net.add_switch(quiet_profile(profiles::switch3()));
  const std::vector<SwitchId> all = {tb.s1, tb.s2, tb.s3};

  sched::RequestDag dag;
  const bool cookie_checks = build_workload(spec, net, tb, dag);

  // Baseline images of every switch before the transaction: the re-sync
  // target for a late crash on a switch the transaction never touched.
  std::map<SwitchId, sched::TableImage> baseline;
  for (const auto id : all) {
    baseline.emplace(id,
                     sched::image_of(net.sw(id).flow_stats(of::Match::any())));
  }

  sched::TransactionOptions topts;
  topts.policy = spec.policy;
  // Pinned so cookies replay identically; never 0 (0 draws a fresh id).
  topts.txn_id = static_cast<std::uint32_t>(spec.seed % 0xfffff) + 1;
  topts.exec.request_timeout = millis(200);
  topts.exec.max_retries = 6;
  topts.exec.backoff_base = millis(5);
  topts.readback_timeout = millis(200);
  topts.max_readback_retries = 6;
  topts.max_reconcile_rounds = 6;

  // Misbehavior mode routes the transaction through the TangoController so
  // the knowledge-health wiring is exercised end-to-end: every switch
  // starts suspected (operator distrust), so its commit runs with
  // conservative cost hints and readback verification — the only defense
  // against a switch that acknowledges installs it never performed.
  std::optional<core::TangoController> ctl;
  if (spec.misbehavior) {
    ctl.emplace(net);
    for (const auto id : all) {
      ctl->adopt(synthetic_knowledge(net, id));
      ctl->health().suspect(id);
    }
  }

  // Construct (snapshot + journal) over the still-clean channel, then arm
  // the schedule relative to commit start.
  sched::UpdateTransaction txn =
      spec.misbehavior ? ctl->begin_update(std::move(dag), topts)
                       : sched::UpdateTransaction(net, std::move(dag), topts);
  const SimTime t0 = net.now();
  for (const auto id : all) {
    net.enable_faults(id, config_for(schedule, id, t0));
  }
  std::map<SwitchId, switchsim::MisbehaviorProfile> mis;
  for (const auto& ev : schedule.events) {
    if (!is_misbehavior(ev.kind)) continue;
    switchsim::MisbehaviorEvent me;
    me.kind = misbehavior_kind_of(ev.kind);
    me.at = t0 + ev.at;
    if (ev.kind == FaultKind::kLatencyDrift ||
        ev.kind == FaultKind::kCapacityShrink) {
      me.magnitude = ev.magnitude;
    } else {
      me.count = static_cast<std::size_t>(ev.magnitude);
    }
    mis[ev.target].events.push_back(me);
  }
  for (auto& [id, profile] : mis) net.set_misbehavior(id, std::move(profile));

  sched::DionysusScheduler scheduler;
  out.report = txn.commit(scheduler);

  // Drain to quiescence: late scheduled faults (a crash landing after the
  // commit finished) still fire here. Crashes past this point are the
  // controller's standing re-sync duty, not the transaction's — record
  // them and repair below, as a crash handler would.
  std::set<SwitchId> late_crashes;
  net.set_crash_handler([&late_crashes](SwitchId id) {
    late_crashes.insert(id);
  });
  net.run_all();
  net.set_crash_handler({});

  for (const auto id : all) {
    if (const auto* inj = net.fault_injector(id)) {
      out.fault_stats[id] = inj->stats();
    }
  }

  // Quiescent point: swap in clean injectors (no loss, no windows) and
  // disarm any leftover misbehavior budgets so the oracle phase's readback
  // traffic cannot itself be faulted or lied to. A final explicit sweep
  // first activates any still-pending events (their activation echo-poke
  // may have been dropped by the wire faults) so drift lands before the
  // sentinel and the activation counters reconcile with the schedule.
  for (const auto id : all) {
    net::FaultConfig clean;
    clean.seed = 1;
    net.enable_faults(id, clean);
    if (spec.misbehavior) {
      net.sw(id).sweep_timeouts(net.now());
      out.misbehavior_stats[id] = net.sw(id).misbehavior_stats();
      net.sw(id).clear_misbehavior();
    }
  }

  if (!late_crashes.empty()) {
    std::set<SwitchId> in_txn;
    for (const auto& entry : txn.journal()) in_txn.insert(entry.location);
    std::map<SwitchId, sched::TableImage> desired;
    for (const auto id : late_crashes) {
      desired.emplace(id, in_txn.count(id) != 0 ? desired_image(txn, id)
                                                : baseline.at(id));
    }
    sched::Reconciler reconciler(net, {});
    const auto stats = reconciler.run(desired);
    log::info("chaos: post-commit crash on " +
              std::to_string(late_crashes.size()) +
              " switch(es); re-sync issued " +
              std::to_string(stats.repairs_issued) + " repairs");
  }

  OracleInput in;
  in.net = &net;
  in.txn = &txn;
  in.schedule = &schedule;
  in.fault_stats = out.fault_stats;
  in.cookie_checks = cookie_checks;
  out.violations = check_invariants(in);

  // Final tables captured before any sentinel activity: re-inference
  // probing wipes and rewrites them.
  std::map<SwitchId, sched::TableImage> tables;
  for (const auto id : all) {
    tables.emplace(id, sched::image_of(net.sw(id).flow_stats(of::Match::any())));
  }

  if (spec.misbehavior) {
    // Accounting: every scheduled semantic fault must have activated.
    std::map<SwitchId, std::uint64_t> scheduled_mis;
    for (const auto& ev : schedule.events) {
      if (is_misbehavior(ev.kind)) ++scheduled_mis[ev.target];
    }
    for (const auto& [id, m] : out.misbehavior_stats) {
      const auto it = scheduled_mis.find(id);
      const std::uint64_t want = it == scheduled_mis.end() ? 0 : it->second;
      if (m.events_activated != want) {
        out.violations.push_back(
            {"misbehavior-counters",
             "switch " + std::to_string(id) + ": " +
                 std::to_string(m.events_activated) +
                 " misbehavior events activated vs " + std::to_string(want) +
                 " scheduled"});
      }
    }

    // Knowledge reconvergence: a forced sentinel sweep must confirm and
    // re-infer every latency drift. A switch that only drifted (or was
    // never faulted semantically) must come out of quarantine — drift is
    // cured by re-inference, and honest switches recover trust through
    // their clean verified commits. A switch that *lied* (silent drops,
    // stale stats, spurious removals, inversions) may legitimately stay
    // quarantined: readback mismatches discredit trust, and re-inference
    // cannot restore faith in a switch that misreports its own state.
    out.sentinel = ctl->run_sentinel({}, /*force_probe=*/true);
    std::set<SwitchId> drifted;
    std::set<SwitchId> lied_to;
    for (const auto& ev : schedule.events) {
      switch (ev.kind) {
        case FaultKind::kLatencyDrift:
          drifted.insert(ev.target);
          break;
        case FaultKind::kSilentInstallDrop:
        case FaultKind::kStaleFlowStats:
        case FaultKind::kSpuriousFlowRemoved:
        case FaultKind::kPriorityInversion:
          lied_to.insert(ev.target);
          break;
        default:
          break;
      }
    }
    for (const auto& act : out.sentinel) {
      if (drifted.count(act.switch_id) != 0 &&
          !(act.confirmed && act.reinferred)) {
        out.violations.push_back(
            {"knowledge",
             "switch " + std::to_string(act.switch_id) +
                 ": latency drift not detected/re-inferred by the sentinel"});
      }
      if (act.quarantined && lied_to.count(act.switch_id) == 0) {
        out.violations.push_back(
            {"knowledge", "switch " + std::to_string(act.switch_id) +
                              " still quarantined after the sentinel sweep"});
      }
    }
  }

  out.end_time = net.now();
  out.wall_ns = net.wall_ns();
  out.fingerprint = fingerprint_of(out, tables);
  return out;
}

}  // namespace tango::chaos
