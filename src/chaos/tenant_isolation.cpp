#include "chaos/tenant_isolation.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/rng.h"
#include "net/network.h"
#include "scheduler/reconciler.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"

namespace tango::chaos {

namespace {

namespace profiles = switchsim::profiles;

/// Zero the profile's latency jitter (same rationale as harness.cpp: every
/// divergence between runs must be attributable to the spec).
switchsim::SwitchProfile quiet(switchsim::SwitchProfile profile) {
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  return profile;
}

/// One rule the run is expected to leave installed (or not).
struct ExpectedRule {
  SwitchId sw = 0;
  of::Match match;
  std::uint16_t priority = 0;
  std::uint16_t out_port = 0;
};

/// Everything the oracles need to know about one submitted intent.
struct IntentExpect {
  service::TenantId tenant = 0;
  std::vector<ExpectedRule> rules;
  bool dispatched = false;
  sched::TransactionReport report;
};

/// Tenant t's rule space: disjoint /32s under 10.(t+1).0.0/16. `lane` keys
/// the intent within the tenant (base intents, coalesce payloads, overflow
/// probe all get distinct lanes); shared-switch rules shift the lane by 128
/// so private and shared spaces never collide either.
of::Match tenant_match(service::TenantId t, std::uint32_t lane,
                       std::uint32_t i, bool shared) {
  const std::uint32_t addr = (10u << 24) | ((t + 1) << 16) |
                             ((lane + (shared ? 128u : 0u)) << 8) | i;
  of::Match m;
  m.with_dl_type(0x0800);
  m.set_nw_dst_prefix(addr, 32);
  return m;
}

/// Build one intent's DAG: a sequential chain of ADDs over the tenant's
/// private switch then the shared switch (chained so the commit spans real
/// virtual time — the concurrency window the isolation oracle cares about).
sched::RequestDag make_dag(service::TenantId t, std::uint32_t lane,
                           SwitchId priv, SwitchId shared,
                           std::size_t n_priv, std::size_t n_shared,
                           std::vector<ExpectedRule>& rules_out) {
  sched::RequestDag dag;
  std::size_t prev = 0;
  bool have_prev = false;
  const auto add = [&](SwitchId sw, const of::Match& m, std::uint16_t prio) {
    sched::SwitchRequest req;
    req.location = sw;
    req.type = sched::RequestType::kAdd;
    req.priority = prio;
    req.match = m;
    req.actions = of::output_to(static_cast<std::uint16_t>(1 + t % 4));
    const std::size_t id = dag.add(std::move(req));
    if (have_prev) dag.add_dependency(prev, id);
    prev = id;
    have_prev = true;
    rules_out.push_back(
        {sw, m, prio, static_cast<std::uint16_t>(1 + t % 4)});
  };
  for (std::uint32_t i = 0; i < n_priv; ++i) {
    add(priv, tenant_match(t, lane, i, false),
        static_cast<std::uint16_t>(100 + i));
  }
  for (std::uint32_t i = 0; i < n_shared; ++i) {
    add(shared, tenant_match(t, lane, i, true),
        static_cast<std::uint16_t>(100 + i));
  }
  return dag;
}

// --- fingerprint (same FNV-1a fold as harness.cpp) --------------------------

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void fold_str(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnvPrime;
  }
  fold(h, s.size());
}

std::uint64_t fingerprint_of(
    const TenantChaosResult& r,
    const std::map<std::uint64_t, IntentExpect>& intents,
    const std::map<SwitchId, sched::TableImage>& tables) {
  std::uint64_t h = kFnvOffset;
  const auto& rep = r.report;
  fold(h, rep.submitted);
  fold(h, rep.admitted);
  fold(h, rep.rejected);
  fold(h, rep.coalesced);
  fold(h, rep.dispatched);
  fold(h, rep.completed);
  fold(h, rep.failed_commits);
  fold(h, rep.conflict_blocks);
  fold(h, rep.max_queue_depth);
  fold(h, rep.max_concurrency);
  fold(h, static_cast<std::uint64_t>(std::llround(rep.fairness_index * 1e9)));
  fold(h, static_cast<std::uint64_t>(rep.makespan.ns()));
  for (const auto& [t, ts] : rep.tenants) {
    fold(h, t);
    fold(h, ts.submitted);
    fold(h, ts.rejected);
    fold(h, ts.coalesced);
    fold(h, ts.dispatched);
    fold(h, ts.completed);
    fold(h, ts.failed_commits);
    fold(h, ts.requests_served);
  }
  for (const auto& [id, ie] : intents) {
    fold(h, id);
    fold(h, (ie.dispatched ? 1u : 0u) | (ie.report.committed ? 2u : 0u) |
                (ie.report.reconciled ? 4u : 0u) |
                (ie.report.rolled_back ? 8u : 0u));
  }
  for (const auto& [id, stats] : r.fault_stats) {
    fold(h, id);
    fold(h, stats.dropped_to_switch);
    fold(h, stats.dropped_to_controller);
    fold(h, stats.lost_to_crash);
    fold(h, stats.lost_to_down);
    fold(h, stats.crashes);
  }
  for (const auto& [id, image] : tables) {
    fold(h, id);
    for (const auto& [key, rule] : image) {
      fold_str(h, key);
      fold(h, rule.cookie);
      fold(h, rule.priority);
      fold(h, rule.actions.size());
      fold(h, of::output_port(rule.actions));
    }
  }
  fold(h, static_cast<std::uint64_t>(r.end_time.ns()));
  return h;
}

std::string describe(service::TenantId t, std::uint64_t intent_id,
                     const ExpectedRule& rule) {
  std::ostringstream os;
  os << "tenant " << t << " intent " << intent_id << " sw " << rule.sw << " "
     << rule.match.to_string() << " prio " << rule.priority;
  return os.str();
}

}  // namespace

std::vector<std::string> TenantChaosResult::violation_names() const {
  std::vector<std::string> out;
  for (const auto& v : violations) {
    bool seen = false;
    for (const auto& name : out) seen = seen || name == v.oracle;
    if (!seen) out.push_back(v.oracle);
  }
  return out;
}

TenantChaosResult run_tenant_chaos(const TenantChaosSpec& raw) {
  TenantChaosResult out;
  out.spec = raw;
  out.spec.n_tenants = std::clamp<std::uint32_t>(raw.n_tenants, 2, 16);
  out.spec.intents_per_tenant =
      std::clamp<std::uint32_t>(raw.intents_per_tenant, 1, 16);
  const auto& spec = out.spec;
  const service::TenantId victim = 0;
  Rng rng(spec.seed * 6271 + 11);

  net::Network net;
  const SwitchId shared_sw = net.add_switch(quiet(profiles::switch1()));
  std::vector<SwitchId> priv(spec.n_tenants);
  for (auto& id : priv) id = net.add_switch(quiet(profiles::switch1()));
  std::vector<SwitchId> all = {shared_sw};
  all.insert(all.end(), priv.begin(), priv.end());

  core::TangoController ctl(net);
  service::ServiceOptions sopts;
  sopts.per_tenant_queue_cap = spec.intents_per_tenant + 1;
  sopts.max_concurrent = spec.n_tenants + 1;
  sopts.drr_quantum = 4;
  // Pinned so cookies replay identically; the service adds the intent id.
  sopts.txn_id_base = static_cast<std::uint32_t>(spec.seed % 0xfffff) + 0x100;
  sopts.txn.exec.request_timeout = millis(200);
  sopts.txn.exec.max_retries = 6;
  sopts.txn.exec.backoff_base = millis(5);
  sopts.txn.readback_timeout = millis(200);
  sopts.txn.max_readback_retries = 6;
  sopts.txn.max_reconcile_rounds = 6;

  std::map<std::uint64_t, IntentExpect> intents;
  sopts.on_commit = [&intents](service::TenantId, std::uint64_t id,
                               const sched::TransactionReport& rep) {
    auto it = intents.find(id);
    if (it == intents.end()) return;
    it->second.dispatched = true;
    it->second.report = rep;
  };
  service::IntentService svc(net, ctl, sopts);

  // --- scripted submission schedule -----------------------------------------
  // Every submit outcome below is deterministic given the spec; the
  // accounting oracle re-derives the expected totals from the same script.
  const auto submit = [&](service::TenantId t, std::uint32_t lane,
                          std::size_t n_priv, std::size_t n_shared,
                          std::uint64_t coalesce_key) {
    service::Intent intent;
    intent.tenant = t;
    intent.policy = t == victim ? sched::RecoveryPolicy::kRollBack
                                : sched::RecoveryPolicy::kRollForward;
    intent.coalesce_key = coalesce_key;
    IntentExpect ie;
    ie.tenant = t;
    intent.dag =
        make_dag(t, lane, priv[t], shared_sw, n_priv, n_shared, ie.rules);
    const service::SubmitResult res = svc.submit(std::move(intent));
    if (res.accepted()) intents[res.intent_id] = std::move(ie);
    return res;
  };

  // Base intents, interleaved across tenants so DRR fairness is exercised.
  // The victim's are longer: its commits must span enough virtual time for
  // the crash window to land inside one.
  for (std::uint32_t j = 0; j < spec.intents_per_tenant; ++j) {
    for (service::TenantId t = 0; t < spec.n_tenants; ++t) {
      const std::size_t n_priv =
          static_cast<std::size_t>(rng.uniform_int(2, 3)) +
          (t == victim ? 3 : 0);
      const std::size_t n_shared =
          static_cast<std::size_t>(rng.uniform_int(2, 3));
      submit(t, j, n_priv, n_shared, 0);
    }
  }
  // One coalesce pair per non-victim tenant: the base payload (lane ipt) is
  // superseded by the replacement (lane ipt+1) before dispatch, so only the
  // replacement's rules may ever appear.
  std::size_t expect_coalesced = 0;
  for (service::TenantId t = 1; t < spec.n_tenants; ++t) {
    const std::uint64_t key = 0xC0 + t;
    const auto base = submit(t, spec.intents_per_tenant, 2, 2, key);
    const auto repl = submit(t, spec.intents_per_tenant + 1, 2, 2, key);
    if (repl.coalesced) {
      intents.erase(base.intent_id);  // superseded: never dispatched
      ++expect_coalesced;
    }
  }
  // Overflow probe: tenant 1's queue now sits at the cap, so one more
  // non-coalescing submit must bounce with kQueueFull.
  const auto overflow =
      submit(1, spec.intents_per_tenant + 2, 2, 2, /*coalesce_key=*/0);
  const std::size_t expect_rejected =
      overflow.error == service::AdmitError::kQueueFull ? 1 : 0;

  // --- faults -----------------------------------------------------------------
  // Crash the victim's private switch inside the dispatch window, plus light
  // loss on its channel (retries). The shared switch stays clean: anything
  // that goes wrong there is the service's fault, not the schedule's.
  if (spec.faults) {
    net::FaultConfig cfg;
    cfg.seed = spec.seed * 1000003 + priv[victim];
    cfg.drop_to_switch = 0.03;
    cfg.drop_to_controller = 0.03;
    const SimDuration at = millis(rng.uniform_int(5, 25));
    const SimDuration down = millis(rng.uniform_int(2, 6));
    cfg.crashes.push_back({net.now() + at, down});
    net.enable_faults(priv[victim], cfg);
  }

  sched::DionysusScheduler scheduler;
  svc.run(scheduler);
  // Late scheduled faults (a crash landing after the last commit) still
  // drain here, before the readback oracles run.
  net.run_all();

  for (const auto id : all) {
    if (const auto* inj = net.fault_injector(id)) {
      out.fault_stats[id] = inj->stats();
    }
  }
  // Quiescent point: clean injectors so oracle readback can't be faulted.
  for (const auto id : all) {
    net::FaultConfig clean;
    clean.seed = 1;
    net.enable_faults(id, clean);
  }

  out.report = svc.report();

  std::map<SwitchId, sched::TableImage> tables;
  for (const auto id : all) {
    tables.emplace(id,
                   sched::image_of(net.sw(id).flow_stats(of::Match::any())));
  }

  // --- oracles ----------------------------------------------------------------
  const auto rule_of = [&tables](const ExpectedRule& want)
      -> const sched::RuleImage* {
    const auto& image = tables.at(want.sw);
    const auto it = image.find(sched::rule_key(want.match, want.priority));
    return it == image.end() ? nullptr : &it->second;
  };

  for (const auto& [id, ie] : intents) {
    if (ie.report.rolled_back) ++out.rollbacks;
    const std::uint32_t want_txn =
        sopts.txn_id_base + static_cast<std::uint32_t>(id);

    if (ie.tenant != victim) {
      // isolation: a committed non-victim intent's rules survive everything
      // the victim's rollback did on the shared switch.
      if (!ie.dispatched || !ie.report.committed) continue;
      for (const ExpectedRule& want : ie.rules) {
        const auto* got = rule_of(want);
        if (got == nullptr) {
          out.violations.push_back(
              {"isolation", describe(ie.tenant, id, want) + ": rule missing"});
          continue;
        }
        if (sched::UpdateTransaction::txn_of_cookie(got->cookie) != want_txn ||
            of::output_port(got->actions) != want.out_port) {
          out.violations.push_back(
              {"isolation",
               describe(ie.tenant, id, want) + ": rule perturbed (cookie " +
                   std::to_string(got->cookie) + ")"});
        }
      }
      continue;
    }
    // rollback-scope: a rolled-back victim intent left no trace on the
    // shared switch (its private switch was crash-wiped; not judged).
    if (ie.report.rolled_back && ie.report.committed) {
      for (const ExpectedRule& want : ie.rules) {
        if (want.sw != shared_sw) continue;
        if (rule_of(want) != nullptr) {
          out.violations.push_back(
              {"rollback-scope",
               describe(ie.tenant, id, want) + ": survived its rollback"});
        }
      }
    }
  }

  // no-strays: every service-cookie rule in the final tables maps to a
  // dispatched intent that ended committed-forward.
  for (const auto& [sw, image] : tables) {
    for (const auto& [key, rule] : image) {
      const std::uint32_t txn =
          sched::UpdateTransaction::txn_of_cookie(rule.cookie);
      if (txn < sopts.txn_id_base) continue;
      const std::uint64_t intent_id = txn - sopts.txn_id_base;
      const auto it = intents.find(intent_id);
      const bool legitimate = it != intents.end() && it->second.dispatched &&
                              it->second.report.committed &&
                              !it->second.report.rolled_back;
      if (!legitimate) {
        out.violations.push_back(
            {"no-strays", "sw " + std::to_string(sw) + " rule " + key +
                              " from intent " + std::to_string(intent_id) +
                              " which never committed forward"});
      }
    }
  }

  // accounting: the scripted schedule has known totals, and run() drains.
  const auto& rep = out.report;
  const std::size_t expect_admitted =
      std::size_t{spec.n_tenants} * spec.intents_per_tenant +
      (spec.n_tenants - 1);
  const auto account = [&out](const std::string& what, std::size_t got,
                              std::size_t want) {
    if (got != want) {
      out.violations.push_back(
          {"accounting", what + ": " + std::to_string(got) + " != expected " +
                             std::to_string(want)});
    }
  };
  account("admitted", rep.admitted, expect_admitted);
  account("coalesced", rep.coalesced, expect_coalesced);
  account("rejected", rep.rejected, expect_rejected);
  account("submitted", rep.submitted,
          rep.admitted + rep.rejected + rep.coalesced);
  account("dispatched", rep.dispatched, rep.admitted);
  account("completed", rep.completed, rep.dispatched);
  std::size_t tenant_completed = 0;
  for (const auto& [t, ts] : rep.tenants) tenant_completed += ts.completed;
  account("tenant-completed-sum", tenant_completed, rep.completed);
  for (service::TenantId t = 0; t < spec.n_tenants; ++t) {
    account("queue-depth[" + std::to_string(t) + "]", svc.queue_depth(t), 0);
  }

  // fairness-range: index in (0, 1], concurrency within configured bounds.
  if (!(rep.fairness_index > 0 && rep.fairness_index <= 1.0 + 1e-9)) {
    out.violations.push_back(
        {"fairness-range",
         "fairness index " + std::to_string(rep.fairness_index)});
  }
  if (rep.max_concurrency > sopts.max_concurrent) {
    out.violations.push_back(
        {"fairness-range",
         "max concurrency " + std::to_string(rep.max_concurrency) +
             " exceeds cap " + std::to_string(sopts.max_concurrent)});
  }
  if (rep.avg_concurrency >
      static_cast<double>(rep.max_concurrency) + 1e-9) {
    out.violations.push_back(
        {"fairness-range",
         "avg concurrency " + std::to_string(rep.avg_concurrency) +
             " exceeds peak " + std::to_string(rep.max_concurrency)});
  }

  out.end_time = net.now();
  out.wall_ns = net.wall_ns();
  out.fingerprint = fingerprint_of(out, intents, tables);
  return out;
}

}  // namespace tango::chaos
