#include "chaos/ha_harness.h"

#include <set>

#include "common/logging.h"
#include "net/network.h"
#include "openflow/actions.h"
#include "openflow/epoch.h"
#include "scheduler/reconciler.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"

namespace tango::chaos {

std::string to_string(ControllerFaultKind kind) {
  switch (kind) {
    case ControllerFaultKind::kControllerCrash: return "controller_crash";
    case ControllerFaultKind::kControllerPartition:
      return "controller_partition";
    case ControllerFaultKind::kReplicationLoss: return "replication_loss";
    case ControllerFaultKind::kCrashDuringTakeover:
      return "crash_during_takeover";
    case ControllerFaultKind::kCrashAfterCommit: return "crash_after_commit";
  }
  return "?";
}

ControllerFaultKind scenario_of(std::uint64_t seed) {
  return static_cast<ControllerFaultKind>(seed % 5);
}

namespace {

namespace profiles = switchsim::profiles;

bool same_rule_sans_epoch(const sched::RuleImage& a,
                          const sched::RuleImage& b) {
  return a.priority == b.priority && a.actions == b.actions &&
         of::cookie_sans_epoch(a.cookie) == of::cookie_sans_epoch(b.cookie);
}

bool cookie_of_txn(std::uint64_t cookie, std::uint32_t txn_id) {
  if (of::epoch_of_cookie(cookie) == 0) return false;
  const auto txn = static_cast<std::uint32_t>(cookie >> 32) & of::kCookieTxnMask;
  return txn == (txn_id & of::kCookieTxnMask);
}

std::uint64_t fingerprint_of(const HaChaosResult& r,
                             const std::map<SwitchId, sched::TableImage>& tables,
                             const std::map<SwitchId, std::uint32_t>& epochs) {
  std::uint64_t h = kFnvOffsetBasis;
  fnv_fold(h, r.spec.seed);
  fnv_fold(h, static_cast<std::uint64_t>(r.spec.scenario));
  for (const auto& rep : r.takeovers) {
    fnv_fold(h, rep.epoch);
    fnv_fold(h, static_cast<std::uint64_t>(rep.detected_at.ns()));
    fnv_fold(h, static_cast<std::uint64_t>(rep.completed_at.ns()));
    fnv_fold(h, rep.switches_fenced);
    fnv_fold(h, rep.fence_failures);
    fnv_fold(h, rep.knowledge_restored);
    fnv_fold(h, static_cast<std::uint64_t>(rep.knowledge_age.ns()));
    fnv_fold(h, rep.txns_replayed);
    fnv_fold(h, rep.txns_rolled_forward);
    fnv_fold(h, rep.txns_rolled_back);
    fnv_fold(h, rep.repairs_issued);
    fnv_fold(h, rep.stale_rules_removed);
    fnv_fold(h, rep.sentinel_probes);
    fnv_fold(h, (rep.converged ? 1u : 0u) | (rep.aborted ? 2u : 0u));
  }
  fnv_fold(h, r.link.shipped);
  fnv_fold(h, r.link.delivered);
  fnv_fold(h, r.link.lost_to_loss);
  fnv_fold(h, r.link.lost_to_partition);
  fnv_fold(h, r.link.bytes_shipped);
  fnv_fold(h, r.standby.records_received);
  fnv_fold(h, r.standby.heartbeats_received);
  fnv_fold(h, r.standby.checkpoints_applied);
  fnv_fold(h, r.standby.txns_shadowed);
  fnv_fold(h, r.standby.seq_gaps);
  fnv_fold(h, static_cast<std::uint64_t>(r.standby.max_replication_lag.ns()));
  fnv_fold(h, r.ha.stale_records_dropped);
  fnv_fold(h, r.stale_epoch_rejections);
  for (const auto& [id, epoch] : epochs) {
    fnv_fold(h, id);
    fnv_fold(h, epoch);
  }
  for (const auto& [id, image] : tables) {
    fnv_fold(h, id);
    for (const auto& [key, rule] : image) {
      fnv_fold_str(h, key);
      fnv_fold(h, rule.cookie);
      fnv_fold(h, rule.priority);
      fnv_fold(h, rule.actions.size());
      fnv_fold(h, of::output_port(rule.actions));
    }
  }
  fnv_fold(h, static_cast<std::uint64_t>(r.end_time.ns()));
  return h;
}

}  // namespace

HaChaosResult run_ha_chaos(const HaChaosSpec& spec) {
  HaChaosResult out;
  out.spec = spec;
  const auto scenario = spec.scenario;

  net::Network net;
  workload::TestbedIds tb;
  tb.s1 = net.add_switch(quiet_profile(profiles::switch1()));
  tb.s2 = net.add_switch(quiet_profile(profiles::switch1()));
  tb.s3 = net.add_switch(quiet_profile(profiles::switch3()));
  const std::vector<SwitchId> all = {tb.s1, tb.s2, tb.s3};

  // Three controllers: the primary and two promotion candidates (the second
  // is only reached by the double-failover scenario).
  core::TangoController primary(net);
  core::TangoController second(net);
  core::TangoController third(net);
  std::vector<core::TangoController*> successors = {&second, &third};
  for (const auto id : all) primary.adopt(synthetic_knowledge(net, id));

  ha::HaOptions hopts;
  hopts.heartbeat_interval = millis(10);
  hopts.missed_heartbeats = 3;
  hopts.checkpoint_interval = millis(50);
  hopts.replication_delay = micros(150);
  hopts.replay_exec.request_timeout = millis(200);
  hopts.replay_exec.max_retries = 6;
  hopts.replay_exec.backoff_base = millis(5);
  ha::HaController ha(net, primary, hopts);
  ha.start();

  // Workload + pre-state, exactly as the wire-fault harness builds them.
  ChaosSpec base;
  base.seed = spec.seed;
  base.workload = spec.workload;
  base.policy = spec.policy;
  base.horizon = spec.horizon;
  sched::RequestDag dag;
  build_workload(base, net, tb, dag);

  sched::TransactionOptions topts;
  topts.policy = spec.policy;
  topts.txn_id = static_cast<std::uint32_t>(spec.seed % 0xfffff) + 1;
  topts.exec.request_timeout = millis(200);
  topts.exec.max_retries = 6;
  topts.exec.backoff_base = millis(5);
  topts.readback_timeout = millis(200);
  topts.max_readback_retries = 6;
  topts.max_reconcile_rounds = 6;
  topts = ha.stamp(topts);

  // Construction ships the write-ahead journal before the first wire frame.
  auto txn = primary.begin_update(std::move(dag), topts);
  const SimTime t0 = net.now();
  const auto fault_at = t0 + millis(1 + spec.seed % 7);

  bool abandoned = false;
  const bool zombie = scenario == ControllerFaultKind::kControllerPartition;
  switch (scenario) {
    case ControllerFaultKind::kControllerCrash:
    case ControllerFaultKind::kCrashDuringTakeover:
      net.events().schedule_at(fault_at, [&ha, &txn, &abandoned] {
        ha.crash_primary();
        txn.abandon();
        abandoned = true;
      });
      break;
    case ControllerFaultKind::kControllerPartition:
      // The primary survives: heartbeats and journal records keep shipping
      // into the blackhole while the commit keeps mutating switches.
      net.events().schedule_at(fault_at,
                               [&ha] { ha.link().set_partitioned(true); });
      break;
    case ControllerFaultKind::kReplicationLoss:
      ha.link().add_loss_window(fault_at, fault_at + millis(20));
      net.events().schedule_at(fault_at + millis(25),
                               [&ha, &txn, &abandoned] {
        ha.crash_primary();
        txn.abandon();
        abandoned = true;
      });
      break;
    case ControllerFaultKind::kCrashAfterCommit:
      break;  // crash is triggered below, right after the commit epilogue
  }

  sched::DionysusScheduler scheduler;
  txn.start_commit(scheduler);

  const std::size_t expected_takeovers =
      scenario == ControllerFaultKind::kCrashDuringTakeover ? 2 : 1;
  bool finished = false;
  bool post_commit_crashed = false;
  std::size_t guard = 0;
  while (guard++ < 50'000'000) {
    if (!abandoned && !finished && txn.exec_done()) {
      txn.finish_commit();
      finished = true;
      if (scenario == ControllerFaultKind::kCrashAfterCommit &&
          !post_commit_crashed) {
        ha.crash_primary();
        post_commit_crashed = true;
      }
    }
    if (ha.takeover_due()) {
      const std::size_t n = ha.takeovers().size();
      if (n < successors.size()) {
        if (zombie) {
          // The new pair replicates over a healthy path; only the deposed
          // primary stays partitioned (its stragglers are epoch-filtered).
          ha.link().set_partitioned(false);
        }
        if (scenario == ControllerFaultKind::kCrashDuringTakeover && n == 0) {
          // First successor dies between its fencing pump and its replay
          // loop: fencing advances virtual time well past +1us.
          ha.schedule_primary_crash(net.now() + micros(1));
        }
        ha.take_over(*successors[n]);
        if (zombie && !abandoned && !finished) {
          // The zombie is fenced out; the operator kills the process.
          txn.abandon();
          abandoned = true;
        }
        continue;
      }
    }
    const bool settled = (finished || abandoned) &&
                         ha.takeovers().size() >= expected_takeovers &&
                         ha.accepting_intents();
    if (settled) break;
    if (!net.events().step()) break;
  }

  ha.stop();
  net.run_all();  // drain orphaned pulse/watchdog timers

  out.takeovers = ha.takeovers();
  out.link = ha.link().stats();
  out.standby = ha.standby().stats();
  out.ha = ha.stats();
  out.epoch = ha.epoch();
  for (const auto id : all) {
    out.stale_epoch_rejections += net.sw(id).stale_epoch_rejections();
  }

  std::map<SwitchId, sched::TableImage> tables;
  std::map<SwitchId, std::uint32_t> epochs;
  for (const auto id : all) {
    tables.emplace(id,
                   sched::image_of(net.sw(id).flow_stats(of::Match::any())));
    epochs.emplace(id, net.sw(id).controller_epoch());
  }

  // --- oracles --------------------------------------------------------------
  if (ha.takeovers().size() != expected_takeovers) {
    out.violations.push_back(
        {"failover", std::to_string(ha.takeovers().size()) +
                         " takeovers ran, expected " +
                         std::to_string(expected_takeovers)});
  }
  for (const auto id : all) {
    if (epochs.at(id) != out.epoch) {
      out.violations.push_back(
          {"epoch-agreement",
           "switch " + std::to_string(id) + " holds epoch " +
               std::to_string(epochs.at(id)) + ", controller is at " +
               std::to_string(out.epoch)});
    }
    if (net.sw(id).stale_epoch_applied() != 0) {
      out.violations.push_back(
          {"stale-epoch-applied",
           "switch " + std::to_string(id) + " applied " +
               std::to_string(net.sw(id).stale_epoch_applied()) +
               " stale-epoch mutations"});
    }
  }
  for (const auto& rep : out.takeovers) {
    if (rep.fence_failures != 0) {
      out.violations.push_back(
          {"fence", "takeover to epoch " + std::to_string(rep.epoch) +
                        " left " + std::to_string(rep.fence_failures) +
                        " switches unfenced"});
    }
  }

  // Takeover convergence: judge the last *completed* takeover (the aborted
  // first pass of a double failover is judged by its successor's outcome).
  const ha::TakeoverReport* last = nullptr;
  for (const auto& rep : out.takeovers) {
    if (!rep.aborted) last = &rep;
  }
  if (last != nullptr) {
    if (!last->converged) {
      out.violations.push_back(
          {"takeover-convergence", "takeover to epoch " +
                                       std::to_string(last->epoch) +
                                       " did not converge"});
    }
    for (const auto& [id, target] : last->targets) {
      const auto& actual = tables.at(id);
      for (const auto& [key, rule] : target) {
        const auto it = actual.find(key);
        if (it == actual.end()) {
          out.violations.push_back(
              {"takeover-convergence", "switch " + std::to_string(id) +
                                           ": target rule missing (" + key +
                                           ")"});
        } else if (!same_rule_sans_epoch(it->second, rule)) {
          out.violations.push_back(
              {"takeover-convergence", "switch " + std::to_string(id) +
                                           ": rule diverges from target (" +
                                           key + ")"});
        }
      }
      for (const auto& [key, rule] : actual) {
        (void)rule;
        if (target.find(key) == target.end()) {
          out.violations.push_back(
              {"takeover-convergence", "switch " + std::to_string(id) +
                                           ": rule outside target image (" +
                                           key + ")"});
        }
      }
    }
    // A rolled-back transaction must leave no authored rule anywhere —
    // including switches the replay never had a target image for.
    if (spec.policy == sched::RecoveryPolicy::kRollBack &&
        last->txns_rolled_back > 0) {
      for (const auto& [id, image] : tables) {
        for (const auto& [key, rule] : image) {
          if (cookie_of_txn(rule.cookie, topts.txn_id) &&
              (last->targets.find(id) == last->targets.end() ||
               last->targets.at(id).find(key) == last->targets.at(id).end())) {
            out.violations.push_back(
                {"takeover-convergence",
                 "switch " + std::to_string(id) +
                     ": rolled-back rule left behind (" + key + ")"});
          }
        }
      }
    }
    // No committed transaction lost: everything the dead primary reported
    // committed is still installed (modulo the cookie's epoch byte).
    for (const auto& [id, target] : last->committed_targets) {
      const auto& actual = tables.at(id);
      for (const auto& [key, rule] : target) {
        const auto it = actual.find(key);
        if (it == actual.end() || !same_rule_sans_epoch(it->second, rule)) {
          out.violations.push_back(
              {"committed-preserved", "switch " + std::to_string(id) +
                                          ": committed rule lost (" + key +
                                          ")"});
        }
      }
    }
  }
  if (guard >= 50'000'000) {
    out.violations.push_back({"ha-harness", "pump loop hit its step guard"});
  }

  out.end_time = net.now();
  out.wall_ns = net.wall_ns();
  out.fingerprint = fingerprint_of(out, tables, epochs);
  return out;
}

}  // namespace tango::chaos
