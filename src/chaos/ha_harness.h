// HA chaos harness: controller-side faults as schedulable chaos events.
//
// Where harness.h injures the *switches*, this harness injures the
// *control plane*: the acting primary crashes mid-commit, gets partitioned
// from its standby (a zombie that keeps retrying under a stale epoch), has
// its replication stream lossy before dying, crashes again during its own
// takeover reconciliation (double failover), or dies just after a clean
// commit. Every scenario is driven through src/ha end-to-end — replication
// shipping, heartbeat-watchdog detection, epoch fencing, journal replay
// through the reconciler, sentinel revalidation — on a live workload
// borrowed from the wire-fault harness (build_workload).
//
// Oracles (all must hold for every scenario):
//  * epoch-agreement        — after quiescence every switch holds exactly
//                             the successor's epoch (one active epoch).
//  * stale-epoch-applied    — no switch ever applied a fenced mutation
//                             carrying a stale epoch (tripwire counter).
//  * fence                  — every takeover fenced every switch.
//  * takeover-convergence   — the final tables match the last completed
//                             takeover's target image, and a rolled-back
//                             transaction leaves none of its rules behind
//                             (rule identity modulo the cookie epoch byte).
//  * committed-preserved    — rules of transactions the dead primary had
//                             reported committed are still installed.
//
// Deterministic: same HaChaosSpec -> same fingerprint, bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/harness.h"
#include "ha/ha.h"

namespace tango::chaos {

/// Controller-side fault scenarios (cf. FaultKind for switch-side faults).
enum class ControllerFaultKind {
  /// Primary process dies mid-commit (between start_commit and
  /// finish_commit); in-flight transaction abandoned.
  kControllerCrash = 0,
  /// Replication link blackholed; the primary survives as a zombie that
  /// keeps retrying under its stale epoch after the standby takes over.
  kControllerPartition = 1,
  /// Replication loss window degrades the shadow (acks lost), then the
  /// primary crashes — takeover replays from the WAL it did receive.
  kReplicationLoss = 2,
  /// Double failover: the first successor crashes during its own takeover
  /// reconciliation; a third controller completes it.
  kCrashDuringTakeover = 3,
  /// Primary dies after a clean commit: nothing to replay, but the
  /// committed transaction must survive the failover.
  kCrashAfterCommit = 4,
};

std::string to_string(ControllerFaultKind kind);

/// Deterministic scenario choice for soak sweeps: seed % 5.
ControllerFaultKind scenario_of(std::uint64_t seed);

/// The deterministic identity of one HA chaos run.
struct HaChaosSpec {
  std::uint64_t seed = 1;
  Workload workload = Workload::kFig10;
  sched::RecoveryPolicy policy = sched::RecoveryPolicy::kRollForward;
  Horizon horizon = Horizon::kShort;
  ControllerFaultKind scenario = ControllerFaultKind::kControllerCrash;
};

struct HaChaosResult {
  HaChaosSpec spec;
  std::vector<OracleViolation> violations;
  /// FNV-1a over takeover reports, link/standby stats, per-switch epoch
  /// counters, final tables, and the final clock.
  std::uint64_t fingerprint = 0;
  SimTime end_time{};
  /// Real (wall-clock) event-loop nanoseconds; excluded from fingerprint.
  std::uint64_t wall_ns = 0;
  std::vector<ha::TakeoverReport> takeovers;
  ha::LinkStats link;
  ha::StandbyStats standby;
  ha::HaStats ha;
  /// Sum of per-switch stale-epoch EPERM rejections (the fence working).
  std::uint64_t stale_epoch_rejections = 0;
  /// Final controller epoch (1 + completed takeovers).
  std::uint32_t epoch = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Execute one HA chaos run. Pure function of the spec.
HaChaosResult run_ha_chaos(const HaChaosSpec& spec);

}  // namespace tango::chaos
