// Chaos schedules: seeded, randomized fault scripts layered over a real
// update workload.
//
// A ChaosSchedule is data, not behaviour: a workload selector, a recovery
// policy, a background loss rate, and a list of timed FaultEvents (crashes,
// stalls, control-channel partitions, correlated loss bursts — plus, when
// the spec opts in, semantic switch misbehavior) with offsets relative to
// commit start. generate_schedule() derives one deterministically from a
// (seed, workload, policy, horizon, misbehavior) tuple; the harness
// (harness.h) materializes it onto net::FaultInjector scheduled-event lists
// and switchsim::MisbehaviorProfile activations and runs the workload under
// it. Because the schedule is plain data it can be serialized
// to a `chaos_repro.v2` JSON file, minimized by the shrinker, and replayed
// bit-identically — the same schedule always produces the same virtual-time
// trace.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "scheduler/transaction.h"

namespace tango::chaos {

enum class FaultKind {
  /// Agent reboot: tables wiped, in-flight traffic lost, back after
  /// `duration` downtime (mid-transaction reboots are these with small
  /// offsets).
  kCrash,
  /// Management CPU freeze for `duration`; state survives.
  kStall,
  /// Control-channel partition: both directions blackholed for `duration`.
  kPartition,
  /// Correlated loss burst: drop probability raised to `drop` in both
  /// directions for `duration`.
  kLossBurst,

  // --- semantic misbehavior (switchsim::MisbehaviorProfile, not the wire
  // injector) — only generated when ChaosSpec::misbehavior is set ----------
  /// Next `magnitude` flow-mod ADDs are acknowledged but never installed.
  kSilentInstallDrop,
  /// Next `magnitude` FLOW_STATS replies serve a frozen snapshot.
  kStaleFlowStats,
  /// Fabricate `magnitude` spurious FLOW_REMOVED notifications.
  kSpuriousFlowRemoved,
  /// Next `magnitude` ADDs install at a skewed priority.
  kPriorityInversion,
  /// Rule-op costs scaled by (1 + `magnitude`) from `at` onward.
  kLatencyDrift,
  /// Fast-table capacity shrunk to `magnitude` (keep fraction) of its size.
  kCapacityShrink,
};

std::string to_string(FaultKind kind);

/// One scripted fault. `at` is an offset from the harness's commit start
/// time (t0), so schedules are position-independent.
struct FaultEvent {
  FaultKind kind = FaultKind::kCrash;
  SwitchId target = 1;
  SimDuration at{};
  SimDuration duration{};
  /// Loss-burst drop probability (both directions); unused by other kinds.
  double drop = 0.0;
  /// Misbehavior parameter: a count for the lie kinds (silent drops, stale
  /// stats, spurious removals, inversions), a scale factor for latency
  /// drift, a keep fraction for capacity shrink. Unused by wire faults.
  double magnitude = 0.0;

  bool operator==(const FaultEvent&) const = default;
};

enum class Workload {
  /// fig10 network-wide link-failure update (ADD on s3, then MOD on s1).
  kFig10,
  /// B4-style traffic-engineering churn (ADD/MOD/DEL chains across s1-s3).
  kTrafficEngineering,
  /// ACL compiler churn: classbench rules through apps::compile_acl.
  kAcl,
};

std::string to_string(Workload w);

enum class Horizon { kShort, kMedium, kLong };

std::string to_string(Horizon h);

/// The deterministic identity of one chaos run. Everything the generator
/// and harness consume is derived from these four fields.
struct ChaosSpec {
  std::uint64_t seed = 1;
  Workload workload = Workload::kFig10;
  sched::RecoveryPolicy policy = sched::RecoveryPolicy::kRollForward;
  Horizon horizon = Horizon::kShort;
  /// Also draw semantic misbehavior events (lying/drifting switches) and
  /// run the workload through the knowledge-health path. Off by default —
  /// and all misbehavior draws happen after the wire-fault draws, so
  /// misbehavior=false schedules are byte-identical to pre-v2 ones.
  bool misbehavior = false;

  bool operator==(const ChaosSpec&) const = default;
};

/// Workload/fault sizing per horizon.
struct HorizonParams {
  /// Flows for fig10, requests for TE, rules for ACL.
  std::size_t workload_size = 16;
  /// Upper bound on generated fault events.
  std::size_t max_events = 6;
  /// Fault event offsets are drawn from [0, window).
  SimDuration window = millis(120);
};

HorizonParams params_of(Horizon h);

struct ChaosSchedule {
  ChaosSpec spec;
  /// Background loss probability applied in both directions for the whole
  /// run (on top of any loss bursts).
  double base_loss = 0.0;
  std::vector<FaultEvent> events;

  bool operator==(const ChaosSchedule&) const = default;
};

/// Derive a schedule from a spec: seeded fault mix (multi-switch crashes,
/// stalls, partitions, correlated loss bursts) with bounded windows so the
/// executor/reconciler recovery budgets can always converge. Deterministic:
/// equal specs yield equal schedules.
ChaosSchedule generate_schedule(const ChaosSpec& spec);

// --- chaos_repro.v2 ---------------------------------------------------------
//
// Replay-file schema (see docs/CHAOS.md):
//   {
//     "schema": "chaos_repro.v2",
//     "seed": N, "workload": s, "policy": s, "horizon": s,
//     "misbehavior": b,          // v2: semantic-fault mode
//     "base_loss": x,
//     "events": [ { "kind": s, "target": N, "at_ns": N,
//                   "duration_ns": N, "drop": x, "magnitude": x }, ... ],
//     "fingerprint": N,          // optional: expected run fingerprint
//     "violations": [ s, ... ]   // optional: oracle names seen at capture
//   }
//
// parse_repro also accepts chaos_repro.v1 documents (no "misbehavior"
// field, no per-event "magnitude") — old captured seeds stay replayable.

/// Serialize a schedule (plus optional capture metadata) to chaos_repro.v2.
/// `fingerprint` 0 omits the field.
std::string to_repro_json(const ChaosSchedule& schedule,
                          std::uint64_t fingerprint = 0,
                          const std::vector<std::string>& violations = {});

struct ParsedRepro {
  ChaosSchedule schedule;
  /// 0 when the file carried no fingerprint.
  std::uint64_t fingerprint = 0;
  std::vector<std::string> violations;
};

/// Parse a chaos_repro.v1 or .v2 document. Errors name the offending field.
Result<ParsedRepro> parse_repro(std::string_view json);

}  // namespace tango::chaos
