#include "chaos/shrinker.h"

#include <algorithm>

namespace tango::chaos {

namespace {

ChaosSchedule with_events(const ChaosSchedule& base,
                          std::vector<FaultEvent> events) {
  ChaosSchedule out = base;
  out.events = std::move(events);
  return out;
}

}  // namespace

ShrinkResult shrink_schedule(
    const ChaosSchedule& failing,
    const std::function<bool(const ChaosSchedule&)>& fails,
    std::size_t max_probes) {
  ShrinkResult out;
  out.schedule = failing;

  const auto probe = [&](const ChaosSchedule& candidate) {
    ++out.probes;
    return fails(candidate);
  };

  if (!probe(failing)) return out;  // not reproducible: nothing to shrink

  // ddmin over the event list.
  std::vector<FaultEvent> events = failing.events;
  std::size_t n = std::min<std::size_t>(2, events.size());
  while (events.size() >= 2 && n >= 2) {
    if (out.probes >= max_probes) {
      out.budget_exhausted = true;
      break;
    }
    const std::size_t chunk = (events.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t i = 0; i < n && i * chunk < events.size(); ++i) {
      const std::size_t lo = i * chunk;
      const std::size_t hi = std::min(events.size(), lo + chunk);

      // Try the chunk alone (fast win on single-cause failures)...
      std::vector<FaultEvent> subset(events.begin() + lo, events.begin() + hi);
      if (subset.size() < events.size() &&
          probe(with_events(failing, subset))) {
        events = std::move(subset);
        n = std::min<std::size_t>(2, events.size());
        reduced = true;
        break;
      }
      if (out.probes >= max_probes) break;

      // ...then its complement.
      std::vector<FaultEvent> rest;
      rest.reserve(events.size() - (hi - lo));
      rest.insert(rest.end(), events.begin(), events.begin() + lo);
      rest.insert(rest.end(), events.begin() + hi, events.end());
      if (!rest.empty() && rest.size() < events.size() &&
          probe(with_events(failing, rest))) {
        events = std::move(rest);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
      if (out.probes >= max_probes) break;
    }
    if (!reduced) {
      if (n >= events.size()) break;  // 1-minimal
      n = std::min(events.size(), n * 2);
    }
  }
  // A single remaining event may still be removable when the background
  // loss alone reproduces the failure.
  if (events.size() == 1 && out.probes < max_probes &&
      probe(with_events(failing, {}))) {
    events.clear();
  }
  out.schedule = with_events(failing, std::move(events));
  out.budget_exhausted = out.budget_exhausted || out.probes >= max_probes;

  // Final simplification: drop the background loss if the events alone
  // still reproduce.
  if (out.schedule.base_loss > 0 && out.probes < max_probes) {
    ChaosSchedule no_loss = out.schedule;
    no_loss.base_loss = 0;
    if (probe(no_loss)) out.schedule = std::move(no_loss);
  }
  return out;
}

}  // namespace tango::chaos
