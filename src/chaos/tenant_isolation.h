// Multi-tenant chaos: seeded IntentService runs under faults, judged by
// isolation oracles.
//
// run_tenant_chaos() builds a fabric with one shared switch plus one
// private switch per tenant, scripts a deterministic submission schedule
// (interleaved intents over disjoint rule spaces, a coalesce pair per
// tenant, one intentional queue overflow), crashes the victim tenant's
// private switch mid-run so its kRollBack transactions reconcile while
// other tenants' commits are in flight on the shared switch, and then
// checks the invariants the service is sold on:
//
//  * isolation      — every rule of every committed non-victim intent is
//                     present in the final tables with the right cookie
//                     and actions. The victim's rollback (which restores
//                     its scoped pre image on the SHARED switch) must not
//                     have perturbed a disjoint tenant's committed rules.
//  * rollback-scope — a victim intent that rolled back left none of its
//                     own rules on the shared switch.
//  * no-strays      — every service-cookie-bearing rule on any switch
//                     belongs to a dispatched intent that committed
//                     forward; superseded (coalesced-away) payloads and
//                     rolled-back intents leave nothing behind.
//  * accounting     — ServiceReport conservation: the scripted submission
//                     schedule has known admit/reject/coalesce totals, the
//                     per-tenant tallies sum to them, and run() drained
//                     every queue.
//  * fairness-range — fairness index in (0, 1], concurrency tallies within
//                     the configured bounds.
//
// Deterministic: equal specs produce equal runs; `fingerprint` folds the
// service tallies, per-intent outcomes, fault stats, final tables, and the
// final clock so bit-identical replay is one integer comparison (the same
// contract as chaos/harness.h).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/oracles.h"
#include "net/fault_injector.h"
#include "service/service.h"

namespace tango::chaos {

/// Deterministic identity of one multi-tenant chaos run.
struct TenantChaosSpec {
  std::uint64_t seed = 1;
  /// Tenant 0 is the victim (kRollBack + faulted private switch); at least
  /// one non-victim is required for isolation to mean anything. Clamped to
  /// [2, 16].
  std::uint32_t n_tenants = 3;
  /// Base intents per tenant (the coalesce pair and the overflow probe ride
  /// on top). Clamped to [1, 16].
  std::uint32_t intents_per_tenant = 3;
  /// Crash the victim's private switch mid-run (plus light loss on its
  /// channel). False = fault-free control run.
  bool faults = true;

  bool operator==(const TenantChaosSpec&) const = default;
};

struct TenantChaosResult {
  TenantChaosSpec spec;
  service::ServiceReport report;
  std::vector<OracleViolation> violations;
  /// FNV-1a over service tallies, per-intent outcomes, fault stats, final
  /// tables, and the final clock.
  std::uint64_t fingerprint = 0;
  /// Virtual time when the run quiesced.
  SimTime end_time{};
  /// Real (wall-clock) event-loop nanoseconds; excluded from fingerprint.
  std::uint64_t wall_ns = 0;
  /// Victim-switch injector stats (the only faulted channel).
  std::map<SwitchId, net::FaultStats> fault_stats;
  /// Victim intents that actually rolled back (0 under many seeds where the
  /// crash lands between victim commits — the soak sweeps seeds until the
  /// overlap is exercised).
  std::size_t rollbacks = 0;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Oracle names, deduplicated in order.
  [[nodiscard]] std::vector<std::string> violation_names() const;
};

/// Execute one multi-tenant chaos run. Pure function of the spec.
TenantChaosResult run_tenant_chaos(const TenantChaosSpec& spec);

}  // namespace tango::chaos
