// The chaos harness: run one workload under one fault schedule and judge
// the outcome.
//
// run_chaos() builds a fresh three-switch network, preinstalls the
// workload's pre-state, wraps the update in an UpdateTransaction, lowers
// the schedule onto per-switch FaultInjector scheduled-event lists
// (absolute times = commit start + event offset), commits through the
// Dionysus scheduler, drains the event queue to a quiescent point, and
// runs every invariant oracle (oracles.h) over the result.
//
// Everything is deterministic: the same ChaosSchedule always produces the
// same virtual-time trace, byte for byte. The 64-bit `fingerprint` folds
// the executor/transaction counters, per-switch fault stats, final table
// images, and the final virtual clock into one value so "bit-identical
// replay" is a single integer comparison.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chaos/oracles.h"
#include "chaos/schedule.h"
#include "net/fault_injector.h"
#include "scheduler/transaction.h"
#include "switchsim/misbehavior.h"
#include "tango/tango.h"
#include "workload/scenarios.h"

namespace tango::chaos {

// --- building blocks shared with the HA harness (ha_harness.h) --------------

/// Zero the profile's latency jitter: chaos runs vary the *fault* schedule,
/// not the switch timing, so every divergence is attributable to faults.
switchsim::SwitchProfile quiet_profile(switchsim::SwitchProfile profile);

/// Build the spec's workload DAG and lay down its pre-state on the testbed.
/// Returns whether the verifier oracle may assert per-rule cookies (false
/// for ACLs, whose first-match-wins overlap makes shadowing legitimate).
bool build_workload(const ChaosSpec& spec, net::Network& net,
                    const workload::TestbedIds& tb, sched::RequestDag& dag);

/// Ground-truth knowledge synthesized from the switch profile — what a
/// completed learn() would have produced, minus the probing cost.
core::SwitchKnowledge synthetic_knowledge(net::Network& net, SwitchId id);

/// FNV-1a fold primitives used by every chaos fingerprint.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
void fnv_fold(std::uint64_t& h, std::uint64_t v);
void fnv_fold_str(std::uint64_t& h, const std::string& s);

struct ChaosResult {
  ChaosSchedule schedule;
  sched::TransactionReport report;
  std::vector<OracleViolation> violations;
  /// FNV-1a over counters, fault stats, final tables, and the final clock
  /// (plus misbehavior stats, health counters, and sentinel outcomes when
  /// the spec enables misbehavior).
  std::uint64_t fingerprint = 0;
  /// Virtual time when the run quiesced.
  SimTime end_time{};
  /// Real (wall-clock) nanoseconds the run's network spent advancing its
  /// event loop. Diagnostics only — never folded into the fingerprint, so
  /// two runs with equal fingerprints may carry different wall times.
  std::uint64_t wall_ns = 0;
  /// Per-switch injector stats captured before the oracle phase.
  std::map<SwitchId, net::FaultStats> fault_stats;
  /// Per-switch semantic-fault stats (misbehavior specs only).
  std::map<SwitchId, switchsim::MisbehaviorStats> misbehavior_stats;
  /// Post-oracle forced sentinel sweep (misbehavior specs only).
  std::vector<core::SentinelAction> sentinel;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// Oracle names, deduplicated in order — the repro metadata.
  [[nodiscard]] std::vector<std::string> violation_names() const;
};

/// Execute one chaos run. Pure function of the schedule.
ChaosResult run_chaos(const ChaosSchedule& schedule);

}  // namespace tango::chaos
