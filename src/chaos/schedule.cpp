#include "chaos/schedule.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/rng.h"
#include "telemetry/json_util.h"

namespace tango::chaos {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "crash";
    case FaultKind::kStall: return "stall";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLossBurst: return "loss_burst";
    case FaultKind::kSilentInstallDrop: return "silent_install_drop";
    case FaultKind::kStaleFlowStats: return "stale_flow_stats";
    case FaultKind::kSpuriousFlowRemoved: return "spurious_flow_removed";
    case FaultKind::kPriorityInversion: return "priority_inversion";
    case FaultKind::kLatencyDrift: return "latency_drift";
    case FaultKind::kCapacityShrink: return "capacity_shrink";
  }
  return "?";
}

std::string to_string(Workload w) {
  switch (w) {
    case Workload::kFig10: return "fig10";
    case Workload::kTrafficEngineering: return "te";
    case Workload::kAcl: return "acl";
  }
  return "?";
}

std::string to_string(Horizon h) {
  switch (h) {
    case Horizon::kShort: return "short";
    case Horizon::kMedium: return "medium";
    case Horizon::kLong: return "long";
  }
  return "?";
}

HorizonParams params_of(Horizon h) {
  switch (h) {
    case Horizon::kShort: return {16, 6, millis(120)};
    case Horizon::kMedium: return {48, 10, millis(300)};
    case Horizon::kLong: return {120, 16, millis(800)};
  }
  return {};
}

ChaosSchedule generate_schedule(const ChaosSpec& spec) {
  // Salt the stream so fault draws never correlate with workload or
  // injector RNGs that also derive from spec.seed.
  Rng rng(spec.seed * 0x9e3779b97f4a7c15ull + 0xc4a05);
  const auto params = params_of(spec.horizon);

  ChaosSchedule out;
  out.spec = spec;
  if (rng.chance(0.5)) out.base_loss = rng.uniform_real(0.01, 0.08);

  // ACL churn only touches s1; faults elsewhere would be dead weight.
  const std::size_t n_targets = spec.workload == Workload::kAcl ? 1 : 3;

  const std::size_t n_events = 1 + rng.index(params.max_events);
  for (std::size_t i = 0; i < n_events; ++i) {
    FaultEvent ev;
    const double roll = rng.uniform_real(0, 1);
    ev.target = static_cast<SwitchId>(1 + rng.index(n_targets));
    ev.at = nanos(rng.uniform_int(0, params.window.ns()));
    // Window bounds are chosen so the executor/reconciler budgets
    // (request_timeout 200ms x 6 retries + echo rescues; 6 readback
    // retries x 6 rounds) always outlive any single fault — a clean seed
    // must converge, so every violation the oracles flag is a real bug.
    if (roll < 0.30) {
      ev.kind = FaultKind::kCrash;
      ev.duration = nanos(rng.uniform_int(millis(5).ns(), millis(40).ns()));
    } else if (roll < 0.50) {
      ev.kind = FaultKind::kStall;
      ev.duration = nanos(rng.uniform_int(millis(5).ns(), millis(60).ns()));
    } else if (roll < 0.75) {
      ev.kind = FaultKind::kPartition;
      ev.duration = nanos(rng.uniform_int(millis(10).ns(), millis(120).ns()));
    } else {
      ev.kind = FaultKind::kLossBurst;
      ev.duration = nanos(rng.uniform_int(millis(10).ns(), millis(150).ns()));
      ev.drop = rng.uniform_real(0.2, 0.9);
    }
    out.events.push_back(ev);
  }

  // Semantic misbehavior draws happen strictly after every wire-fault draw,
  // so schedules with misbehavior=false are byte-identical to pre-v2 ones
  // (frozen repro fingerprints stay valid).
  if (spec.misbehavior) {
    const std::size_t n_mis = 1 + rng.index(3);
    for (std::size_t i = 0; i < n_mis; ++i) {
      FaultEvent ev;
      ev.target = static_cast<SwitchId>(1 + rng.index(n_targets));
      ev.at = nanos(rng.uniform_int(0, params.window.ns()));
      const double roll = rng.uniform_real(0, 1);
      // Lie counts are small (budgets), so the transaction's repair budget
      // (6 readback retries x 6 rounds) always outlasts them; drift scales
      // keep every op far below the 200ms request timeout; shrink keep
      // fractions never evict a chaos-sized workload from a 2048/767-slot
      // fast table.
      if (roll < 0.25) {
        ev.kind = FaultKind::kSilentInstallDrop;
        ev.magnitude = static_cast<double>(1 + rng.index(3));
      } else if (roll < 0.45) {
        ev.kind = FaultKind::kStaleFlowStats;
        ev.magnitude = static_cast<double>(1 + rng.index(2));
      } else if (roll < 0.60) {
        ev.kind = FaultKind::kSpuriousFlowRemoved;
        ev.magnitude = static_cast<double>(1 + rng.index(2));
      } else if (roll < 0.75) {
        ev.kind = FaultKind::kPriorityInversion;
        ev.magnitude = static_cast<double>(1 + rng.index(2));
      } else if (roll < 0.90) {
        ev.kind = FaultKind::kLatencyDrift;
        ev.magnitude = rng.uniform_real(0.5, 3.0);  // cost scale 1.5x..4x
      } else {
        ev.kind = FaultKind::kCapacityShrink;
        ev.magnitude = rng.uniform_real(0.6, 0.9);  // keep fraction
      }
      out.events.push_back(ev);
    }
  }
  // Canonical order: by time, then kind/target, so equal schedules compare
  // equal regardless of generation order and shrunk subsets stay stable.
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) return a.at < b.at;
                     if (a.kind != b.kind) return a.kind < b.kind;
                     return a.target < b.target;
                   });
  return out;
}

// --- chaos_repro.v1 emission ------------------------------------------------

namespace {

std::string policy_name(sched::RecoveryPolicy p) {
  return p == sched::RecoveryPolicy::kRollForward ? "roll_forward"
                                                  : "roll_back";
}

}  // namespace

std::string to_repro_json(const ChaosSchedule& schedule,
                          std::uint64_t fingerprint,
                          const std::vector<std::string>& violations) {
  using telemetry::append_number;
  using telemetry::append_quoted;
  std::string out;
  out += "{\n  \"schema\": \"chaos_repro.v2\",\n";
  out += "  \"seed\": ";
  append_number(out, static_cast<double>(schedule.spec.seed));
  out += ",\n  \"workload\": ";
  append_quoted(out, to_string(schedule.spec.workload));
  out += ",\n  \"policy\": ";
  append_quoted(out, policy_name(schedule.spec.policy));
  out += ",\n  \"horizon\": ";
  append_quoted(out, to_string(schedule.spec.horizon));
  out += ",\n  \"misbehavior\": ";
  out += schedule.spec.misbehavior ? "true" : "false";
  out += ",\n  \"base_loss\": ";
  append_number(out, schedule.base_loss);
  out += ",\n  \"events\": [";
  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const auto& ev = schedule.events[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\": ";
    append_quoted(out, to_string(ev.kind));
    out += ", \"target\": ";
    append_number(out, static_cast<double>(ev.target));
    out += ", \"at_ns\": ";
    append_number(out, static_cast<double>(ev.at.ns()));
    out += ", \"duration_ns\": ";
    append_number(out, static_cast<double>(ev.duration.ns()));
    out += ", \"drop\": ";
    append_number(out, ev.drop);
    out += ", \"magnitude\": ";
    append_number(out, ev.magnitude);
    out += "}";
  }
  out += schedule.events.empty() ? "]" : "\n  ]";
  if (fingerprint != 0) {
    // Hex string: a 64-bit value does not round-trip through a JSON double.
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(fingerprint));
    out += ",\n  \"fingerprint\": ";
    append_quoted(out, buf);
  }
  if (!violations.empty()) {
    out += ",\n  \"violations\": [";
    for (std::size_t i = 0; i < violations.size(); ++i) {
      if (i != 0) out += ", ";
      append_quoted(out, violations[i]);
    }
    out += "]";
  }
  out += "\n}\n";
  return out;
}

// --- chaos_repro.v1 parsing -------------------------------------------------
//
// A minimal recursive-descent JSON reader, sufficient for the fixed repro
// schema (objects, arrays, strings, numbers). Kept private to this file —
// the repo's JSON surface is otherwise emit-only (telemetry/json_util.h).

namespace {

struct JsonValue {
  enum class Type { kNull, kNumber, kString, kArray, kObject, kBool };
  Type type = Type::kNull;
  double number = 0;
  bool boolean = false;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  Result<JsonValue> parse() {
    auto v = value();
    if (!v.ok()) return v;
    skip_ws();
    if (pos_ != text_.size()) return Error{"trailing characters after JSON"};
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> value() {
    skip_ws();
    if (pos_ >= text_.size()) return Error{"unexpected end of JSON"};
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      if (text_.substr(pos_, 4) == "null") {
        pos_ += 4;
        return JsonValue{};
      }
      return Error{"bad literal"};
    }
    return number();
  }

  Result<JsonValue> object() {
    JsonValue out;
    out.type = JsonValue::Type::kObject;
    consume('{');
    if (consume('}')) return out;
    while (true) {
      auto key = string_value();
      if (!key.ok()) return Error{"object key: " + key.error()};
      if (!consume(':')) return Error{"expected ':' after object key"};
      auto val = value();
      if (!val.ok()) return val;
      out.object.emplace(key.value().string, std::move(val.value()));
      if (consume(',')) continue;
      if (consume('}')) return out;
      return Error{"expected ',' or '}' in object"};
    }
  }

  Result<JsonValue> array() {
    JsonValue out;
    out.type = JsonValue::Type::kArray;
    consume('[');
    if (consume(']')) return out;
    while (true) {
      auto val = value();
      if (!val.ok()) return val;
      out.array.push_back(std::move(val.value()));
      if (consume(',')) continue;
      if (consume(']')) return out;
      return Error{"expected ',' or ']' in array"};
    }
  }

  Result<JsonValue> string_value() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Error{"expected string"};
    }
    ++pos_;
    JsonValue out;
    out.type = JsonValue::Type::kString;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.string += '"'; break;
          case '\\': out.string += '\\'; break;
          case '/': out.string += '/'; break;
          case 'n': out.string += '\n'; break;
          case 'r': out.string += '\r'; break;
          case 't': out.string += '\t'; break;
          case 'u': {
            // Repro files only ever escape control characters; decode the
            // low byte and skip the rest.
            if (pos_ + 4 > text_.size()) return Error{"bad \\u escape"};
            unsigned v = 0;
            for (int k = 0; k < 4; ++k) {
              const char h = text_[pos_++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return Error{"bad \\u escape"};
            }
            out.string += static_cast<char>(v & 0xff);
            break;
          }
          default: return Error{"bad escape"};
        }
        continue;
      }
      out.string += c;
    }
    return Error{"unterminated string"};
  }

  Result<JsonValue> boolean() {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      JsonValue out;
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      return out;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      JsonValue out;
      out.type = JsonValue::Type::kBool;
      return out;
    }
    return Error{"bad literal"};
  }

  Result<JsonValue> number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (start == pos_) return Error{"expected number"};
    JsonValue out;
    out.type = JsonValue::Type::kNumber;
    try {
      out.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (...) {
      return Error{"bad number"};
    }
    return out;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<double> require_number(const JsonValue& obj, const std::string& key) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end() || it->second.type != JsonValue::Type::kNumber) {
    return Error{"missing or non-numeric field \"" + key + "\""};
  }
  return it->second.number;
}

Result<std::string> require_string(const JsonValue& obj,
                                   const std::string& key) {
  const auto it = obj.object.find(key);
  if (it == obj.object.end() || it->second.type != JsonValue::Type::kString) {
    return Error{"missing or non-string field \"" + key + "\""};
  }
  return it->second.string;
}

}  // namespace

Result<ParsedRepro> parse_repro(std::string_view json) {
  auto parsed = JsonReader(json).parse();
  if (!parsed.ok()) return Error{parsed.error()};
  const JsonValue& root = parsed.value();
  if (root.type != JsonValue::Type::kObject) {
    return Error{"repro root must be an object"};
  }

  auto schema = require_string(root, "schema");
  if (!schema.ok()) return Error{schema.error()};
  if (schema.value() != "chaos_repro.v1" &&
      schema.value() != "chaos_repro.v2") {
    return Error{"unsupported schema \"" + schema.value() + "\""};
  }

  ParsedRepro out;
  auto seed = require_number(root, "seed");
  if (!seed.ok()) return Error{seed.error()};
  out.schedule.spec.seed = static_cast<std::uint64_t>(seed.value());

  auto workload = require_string(root, "workload");
  if (!workload.ok()) return Error{workload.error()};
  if (workload.value() == "fig10") {
    out.schedule.spec.workload = Workload::kFig10;
  } else if (workload.value() == "te") {
    out.schedule.spec.workload = Workload::kTrafficEngineering;
  } else if (workload.value() == "acl") {
    out.schedule.spec.workload = Workload::kAcl;
  } else {
    return Error{"unknown workload \"" + workload.value() + "\""};
  }

  auto policy = require_string(root, "policy");
  if (!policy.ok()) return Error{policy.error()};
  if (policy.value() == "roll_forward") {
    out.schedule.spec.policy = sched::RecoveryPolicy::kRollForward;
  } else if (policy.value() == "roll_back") {
    out.schedule.spec.policy = sched::RecoveryPolicy::kRollBack;
  } else {
    return Error{"unknown policy \"" + policy.value() + "\""};
  }

  auto horizon = require_string(root, "horizon");
  if (!horizon.ok()) return Error{horizon.error()};
  if (horizon.value() == "short") {
    out.schedule.spec.horizon = Horizon::kShort;
  } else if (horizon.value() == "medium") {
    out.schedule.spec.horizon = Horizon::kMedium;
  } else if (horizon.value() == "long") {
    out.schedule.spec.horizon = Horizon::kLong;
  } else {
    return Error{"unknown horizon \"" + horizon.value() + "\""};
  }

  // v2-only field; absent (v1) means wire faults only.
  if (const auto mis = root.object.find("misbehavior");
      mis != root.object.end() && mis->second.type == JsonValue::Type::kBool) {
    out.schedule.spec.misbehavior = mis->second.boolean;
  }

  auto base_loss = require_number(root, "base_loss");
  if (!base_loss.ok()) return Error{base_loss.error()};
  out.schedule.base_loss = base_loss.value();

  const auto events = root.object.find("events");
  if (events == root.object.end() ||
      events->second.type != JsonValue::Type::kArray) {
    return Error{"missing or non-array field \"events\""};
  }
  for (const auto& item : events->second.array) {
    if (item.type != JsonValue::Type::kObject) {
      return Error{"event must be an object"};
    }
    FaultEvent ev;
    auto kind = require_string(item, "kind");
    if (!kind.ok()) return Error{kind.error()};
    if (kind.value() == "crash") {
      ev.kind = FaultKind::kCrash;
    } else if (kind.value() == "stall") {
      ev.kind = FaultKind::kStall;
    } else if (kind.value() == "partition") {
      ev.kind = FaultKind::kPartition;
    } else if (kind.value() == "loss_burst") {
      ev.kind = FaultKind::kLossBurst;
    } else if (kind.value() == "silent_install_drop") {
      ev.kind = FaultKind::kSilentInstallDrop;
    } else if (kind.value() == "stale_flow_stats") {
      ev.kind = FaultKind::kStaleFlowStats;
    } else if (kind.value() == "spurious_flow_removed") {
      ev.kind = FaultKind::kSpuriousFlowRemoved;
    } else if (kind.value() == "priority_inversion") {
      ev.kind = FaultKind::kPriorityInversion;
    } else if (kind.value() == "latency_drift") {
      ev.kind = FaultKind::kLatencyDrift;
    } else if (kind.value() == "capacity_shrink") {
      ev.kind = FaultKind::kCapacityShrink;
    } else {
      return Error{"unknown fault kind \"" + kind.value() + "\""};
    }
    auto target = require_number(item, "target");
    if (!target.ok()) return Error{target.error()};
    ev.target = static_cast<SwitchId>(target.value());
    auto at = require_number(item, "at_ns");
    if (!at.ok()) return Error{at.error()};
    ev.at = nanos(static_cast<std::int64_t>(at.value()));
    auto duration = require_number(item, "duration_ns");
    if (!duration.ok()) return Error{duration.error()};
    ev.duration = nanos(static_cast<std::int64_t>(duration.value()));
    auto drop = require_number(item, "drop");
    if (!drop.ok()) return Error{drop.error()};
    ev.drop = drop.value();
    // v2-only field; absent (v1) means zero.
    if (const auto mag = item.object.find("magnitude");
        mag != item.object.end() &&
        mag->second.type == JsonValue::Type::kNumber) {
      ev.magnitude = mag->second.number;
    }
    out.schedule.events.push_back(ev);
  }

  if (const auto fp = root.object.find("fingerprint");
      fp != root.object.end() && fp->second.type == JsonValue::Type::kString) {
    out.fingerprint = std::strtoull(fp->second.string.c_str(), nullptr, 0);
  }
  if (const auto vs = root.object.find("violations");
      vs != root.object.end() && vs->second.type == JsonValue::Type::kArray) {
    for (const auto& v : vs->second.array) {
      if (v.type == JsonValue::Type::kString) out.violations.push_back(v.string);
    }
  }
  return out;
}

}  // namespace tango::chaos
