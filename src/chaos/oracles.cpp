#include "chaos/oracles.h"

#include <algorithm>
#include <set>

#include "openflow/actions.h"
#include "scheduler/reconciler.h"
#include "scheduler/verifier.h"

namespace tango::chaos {

std::string to_string(const OracleViolation& v) {
  return v.oracle + ": " + v.detail;
}

const sched::TableImage& desired_image(const sched::UpdateTransaction& txn,
                                       SwitchId id) {
  const auto& report = txn.report();
  if (report.policy == sched::RecoveryPolicy::kRollBack &&
      report.rolled_back) {
    return txn.pre_image(id);
  }
  return txn.post_image(id);
}

namespace {

using sched::TableImage;

std::set<SwitchId> affected_switches(const sched::UpdateTransaction& txn) {
  std::set<SwitchId> out;
  for (const auto& entry : txn.journal()) out.insert(entry.location);
  return out;
}

/// Truth straight from the simulator, bypassing the control channel.
TableImage actual_image(net::Network& net, SwitchId id) {
  return sched::image_of(net.sw(id).flow_stats(of::Match::any()));
}

std::string describe_diff(const TableImage& want, const TableImage& got) {
  for (const auto& [key, rule] : want) {
    const auto it = got.find(key);
    if (it == got.end()) return "missing rule {" + key + "}";
    if (!(it->second == rule)) return "divergent rule {" + key + "}";
  }
  for (const auto& [key, rule] : got) {
    if (want.find(key) == want.end()) return "stale rule {" + key + "}";
  }
  return "tables differ";
}

/// Construct a packet that matches `m` (every constrained field copied,
/// wildcarded fields left at defaults). Returns false when the constructed
/// packet does not actually match — the caller skips the flow.
bool packet_from(const of::Match& m, of::PacketHeader& pkt) {
  pkt = of::PacketHeader{};
  if (!m.field_wildcarded(of::kWildcardInPort)) pkt.in_port = m.in_port;
  if (!m.field_wildcarded(of::kWildcardDlSrc)) pkt.dl_src = m.dl_src;
  if (!m.field_wildcarded(of::kWildcardDlDst)) pkt.dl_dst = m.dl_dst;
  if (!m.field_wildcarded(of::kWildcardDlVlan)) pkt.dl_vlan = m.dl_vlan;
  if (!m.field_wildcarded(of::kWildcardDlVlanPcp)) pkt.dl_vlan_pcp = m.dl_vlan_pcp;
  if (!m.field_wildcarded(of::kWildcardDlType)) pkt.dl_type = m.dl_type;
  if (!m.field_wildcarded(of::kWildcardNwTos)) pkt.nw_tos = m.nw_tos;
  if (!m.field_wildcarded(of::kWildcardNwProto)) pkt.nw_proto = m.nw_proto;
  if (!m.field_wildcarded(of::kWildcardTpSrc)) pkt.tp_src = m.tp_src;
  if (!m.field_wildcarded(of::kWildcardTpDst)) pkt.tp_dst = m.tp_dst;
  if (m.nw_src_prefix_len() > 0) pkt.nw_src = m.nw_src;
  if (m.nw_dst_prefix_len() > 0) pkt.nw_dst = m.nw_dst;
  return m.matches(pkt);
}

void check_committed(const OracleInput& in,
                     std::vector<OracleViolation>& out) {
  const auto& report = in.txn->report();
  if (!report.committed) {
    out.push_back({"committed",
                   "transaction did not reach its end state (reconciled=" +
                       std::string(report.reconciled ? "true" : "false") +
                       ", rounds=" + std::to_string(report.reconcile_rounds) +
                       ")"});
  }
  for (const auto id : report.unreconciled) {
    out.push_back({"committed",
                   "switch " + std::to_string(id) + " unreconciled"});
  }
  if (report.exec.lost_requests != 0) {
    out.push_back({"committed",
                   std::to_string(report.exec.lost_requests) +
                       " requests neither completed nor failed"});
  }
}

void check_image_agreement(const OracleInput& in,
                           std::vector<OracleViolation>& out) {
  for (const auto id : affected_switches(*in.txn)) {
    const auto& want = desired_image(*in.txn, id);
    const auto got = actual_image(*in.net, id);
    if (got != want) {
      out.push_back({"image-agreement",
                     "switch " + std::to_string(id) + ": " +
                         describe_diff(want, got)});
    }
  }
}

void check_readback(const OracleInput& in, std::vector<OracleViolation>& out) {
  sched::ReconcilerOptions opts;
  opts.readback_timeout = millis(200);
  sched::Reconciler reconciler(*in.net, opts);
  for (const auto id : affected_switches(*in.txn)) {
    sched::ReconcileStats stats;
    const auto wire = reconciler.read_table(id, stats);
    if (!wire.has_value()) {
      out.push_back({"readback",
                     "switch " + std::to_string(id) +
                         " unreadable over a clean channel"});
      continue;
    }
    const auto direct = actual_image(*in.net, id);
    if (*wire != direct) {
      out.push_back({"readback",
                     "switch " + std::to_string(id) +
                         ": wire readback disagrees with switch table: " +
                         describe_diff(direct, *wire)});
    }
  }
}

void check_verifier(const OracleInput& in, std::vector<OracleViolation>& out) {
  std::vector<sched::FlowCheck> flows;
  for (const auto id : affected_switches(*in.txn)) {
    const auto& want = desired_image(*in.txn, id);
    // Only matches with a single desired rule on this switch: when the
    // same match exists at two priorities, the lower one is legitimately
    // shadowed by its sibling and a walk cannot distinguish that from a
    // stale leftover.
    std::map<std::string, std::size_t> by_match;  // match string -> count
    for (const auto& [key, rule] : want) ++by_match[rule.match.to_string()];
    for (const auto& [key, rule] : want) {
      if (by_match[rule.match.to_string()] != 1) continue;
      // Walk only rules that forward somewhere. The switch's own table-miss
      // rule (and any deliberate punt-to-controller rule) is not a flow.
      const auto port = of::output_port(rule.actions);
      if (port == of::kPortNone || port == of::kPortController) continue;
      sched::FlowCheck flow;
      flow.ingress = id;
      if (!packet_from(rule.match, flow.packet)) continue;
      if (in.cookie_checks && rule.cookie != 0) {
        flow.expected_cookies[id] = rule.cookie;
      }
      flows.push_back(std::move(flow));
    }
  }
  sched::ConsistencyVerifier verifier(*in.net);
  const auto report = verifier.verify(flows);
  for (const auto& v : report.violations) {
    out.push_back({"verifier",
                   sched::to_string(v.kind) + " at switch " +
                       std::to_string(v.at) + ": " + v.detail});
  }
}

void check_counters(const OracleInput& in, std::vector<OracleViolation>& out) {
  const auto& exec = in.txn->report().exec;
  if (exec.retries > exec.timeouts) {
    out.push_back({"counters",
                   "retries (" + std::to_string(exec.retries) +
                       ") exceed timeouts (" + std::to_string(exec.timeouts) +
                       ")"});
  }
  const bool fault_free =
      in.schedule->events.empty() && in.schedule->base_loss == 0.0;
  if (fault_free && exec.timeouts != 0) {
    out.push_back({"counters",
                   "fault-free schedule produced " +
                       std::to_string(exec.timeouts) + " timeouts"});
  }

  // Per-fault-type accounting: every scheduled event must have fired
  // exactly once, and partition losses require a partition window.
  std::map<SwitchId, std::map<FaultKind, std::uint64_t>> scheduled;
  for (const auto& ev : in.schedule->events) ++scheduled[ev.target][ev.kind];
  for (const auto& [id, stats] : in.fault_stats) {
    const auto& mine = scheduled[id];
    const auto expect = [&](FaultKind k) {
      const auto it = mine.find(k);
      return it == mine.end() ? std::uint64_t{0} : it->second;
    };
    if (stats.crashes != expect(FaultKind::kCrash)) {
      out.push_back({"counters",
                     "switch " + std::to_string(id) + ": " +
                         std::to_string(stats.crashes) + " crashes vs " +
                         std::to_string(expect(FaultKind::kCrash)) +
                         " scheduled"});
    }
    if (stats.stalls != expect(FaultKind::kStall)) {
      out.push_back({"counters",
                     "switch " + std::to_string(id) + ": " +
                         std::to_string(stats.stalls) + " stalls vs " +
                         std::to_string(expect(FaultKind::kStall)) +
                         " scheduled"});
    }
    if (stats.partitions != expect(FaultKind::kPartition)) {
      out.push_back({"counters",
                     "switch " + std::to_string(id) + ": " +
                         std::to_string(stats.partitions) +
                         " partition windows vs " +
                         std::to_string(expect(FaultKind::kPartition)) +
                         " scheduled"});
    }
    if (stats.partitions == 0 && stats.lost_to_partition != 0) {
      out.push_back({"counters",
                     "switch " + std::to_string(id) + ": " +
                         std::to_string(stats.lost_to_partition) +
                         " partition losses without a partition window"});
    }
  }
}

}  // namespace

std::vector<OracleViolation> check_invariants(const OracleInput& in) {
  std::vector<OracleViolation> out;
  check_committed(in, out);
  check_image_agreement(in, out);
  check_readback(in, out);
  check_verifier(in, out);
  check_counters(in, out);
  return out;
}

}  // namespace tango::chaos
