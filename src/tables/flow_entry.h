// A flow-table entry plus the per-flow attributes the paper's switch model
// says cache policies may examine (§5.1 ATTRIB): time since insertion, time
// since last use, traffic count, and rule priority.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "openflow/actions.h"
#include "openflow/match.h"

namespace tango::tables {

struct FlowAttributes {
  SimTime insert_time{};
  SimTime last_use_time{};
  std::uint64_t traffic_count = 0;
};

struct FlowEntry {
  FlowId id = 0;
  of::Match match;
  std::uint16_t priority = 0x8000;
  std::uint64_t cookie = 0;
  of::ActionList actions;
  std::uint16_t idle_timeout = 0;  ///< seconds; 0 = never idles out
  std::uint16_t hard_timeout = 0;  ///< seconds; 0 = permanent
  /// OFPFF_SEND_FLOW_REM: notify the controller on expiry/eviction.
  bool send_flow_removed = false;
  FlowAttributes attrs;
  std::uint64_t byte_count = 0;

  /// Record a data-plane hit at simulated time `now`.
  void record_hit(SimTime now, std::uint32_t bytes) {
    attrs.last_use_time = now;
    attrs.traffic_count += 1;
    byte_count += bytes;
  }

  /// True once either timeout has elapsed at `now`.
  [[nodiscard]] bool expired(SimTime now) const {
    if (hard_timeout > 0 &&
        now - attrs.insert_time >= seconds(hard_timeout)) {
      return true;
    }
    if (idle_timeout > 0 &&
        now - attrs.last_use_time >= seconds(idle_timeout)) {
      return true;
    }
    return false;
  }

  /// Which timeout fired (valid when expired()).
  [[nodiscard]] of::FlowRemovedReason expiry_reason(SimTime now) const {
    if (hard_timeout > 0 && now - attrs.insert_time >= seconds(hard_timeout)) {
      return of::FlowRemovedReason::kHardTimeout;
    }
    return of::FlowRemovedReason::kIdleTimeout;
  }
};

}  // namespace tango::tables
