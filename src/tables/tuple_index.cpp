#include "tables/tuple_index.h"

#include <algorithm>

#include "openflow/constants.h"

namespace tango::tables {

namespace {

// Exact-field bits of MaskSignature::exact, in the mixing order below.
enum : std::uint16_t {
  kFieldInPort = 1u << 0,
  kFieldDlSrc = 1u << 1,
  kFieldDlDst = 1u << 2,
  kFieldDlVlan = 1u << 3,
  kFieldDlVlanPcp = 1u << 4,
  kFieldDlType = 1u << 5,
  kFieldNwTos = 1u << 6,
  kFieldNwProto = 1u << 7,
  kFieldTpSrc = 1u << 8,
  kFieldTpDst = 1u << 9,
};

struct Fnv {
  std::uint64_t x = 1469598103934665603ULL;
  void mix(std::uint64_t v) {
    x ^= v;
    x *= 1099511628211ULL;
  }
  void mix_mac(const of::MacAddr& mac) {
    std::uint64_t v = 0;
    for (auto b : mac) v = (v << 8) | b;
    mix(v);
  }
};

}  // namespace

MaskSignature MaskSignature::of(const of::Match& m) {
  MaskSignature sig;
  auto set = [&](std::uint32_t wildcard_bit, std::uint16_t field_bit) {
    if (!m.field_wildcarded(wildcard_bit)) sig.exact |= field_bit;
  };
  set(of::kWildcardInPort, kFieldInPort);
  set(of::kWildcardDlSrc, kFieldDlSrc);
  set(of::kWildcardDlDst, kFieldDlDst);
  set(of::kWildcardDlVlan, kFieldDlVlan);
  set(of::kWildcardDlVlanPcp, kFieldDlVlanPcp);
  set(of::kWildcardDlType, kFieldDlType);
  set(of::kWildcardNwTos, kFieldNwTos);
  set(of::kWildcardNwProto, kFieldNwProto);
  set(of::kWildcardTpSrc, kFieldTpSrc);
  set(of::kWildcardTpDst, kFieldTpDst);
  sig.src_plen = static_cast<std::uint8_t>(m.nw_src_prefix_len());
  sig.dst_plen = static_cast<std::uint8_t>(m.nw_dst_prefix_len());
  return sig;
}

// The two masked_key_of overloads must mix the same value sequence for any
// (match, packet) pair the match accepts; keep them structurally parallel.

std::uint64_t masked_key_of(const MaskSignature& sig, const of::Match& m) {
  Fnv h;
  if (sig.exact & kFieldInPort) h.mix(m.in_port);
  if (sig.exact & kFieldDlSrc) h.mix_mac(m.dl_src);
  if (sig.exact & kFieldDlDst) h.mix_mac(m.dl_dst);
  if (sig.exact & kFieldDlVlan) h.mix(m.dl_vlan);
  if (sig.exact & kFieldDlVlanPcp) h.mix(m.dl_vlan_pcp);
  if (sig.exact & kFieldDlType) h.mix(m.dl_type);
  if (sig.exact & kFieldNwTos) h.mix(m.nw_tos);
  if (sig.exact & kFieldNwProto) h.mix(m.nw_proto);
  if (sig.exact & kFieldTpSrc) h.mix(m.tp_src);
  if (sig.exact & kFieldTpDst) h.mix(m.tp_dst);
  h.mix(m.nw_src & of::prefix_mask32(sig.src_plen));
  h.mix(m.nw_dst & of::prefix_mask32(sig.dst_plen));
  return h.x;
}

std::uint64_t masked_key_of(const MaskSignature& sig, const of::PacketHeader& p) {
  Fnv h;
  if (sig.exact & kFieldInPort) h.mix(p.in_port);
  if (sig.exact & kFieldDlSrc) h.mix_mac(p.dl_src);
  if (sig.exact & kFieldDlDst) h.mix_mac(p.dl_dst);
  if (sig.exact & kFieldDlVlan) h.mix(p.dl_vlan);
  if (sig.exact & kFieldDlVlanPcp) h.mix(p.dl_vlan_pcp);
  if (sig.exact & kFieldDlType) h.mix(p.dl_type);
  if (sig.exact & kFieldNwTos) h.mix(p.nw_tos);
  if (sig.exact & kFieldNwProto) h.mix(p.nw_proto);
  if (sig.exact & kFieldTpSrc) h.mix(p.tp_src);
  if (sig.exact & kFieldTpDst) h.mix(p.tp_dst);
  h.mix(p.nw_src & of::prefix_mask32(sig.src_plen));
  h.mix(p.nw_dst & of::prefix_mask32(sig.dst_plen));
  return h.x;
}

void TupleSpaceIndex::insert(const of::Match& m, FlowId id) {
  const MaskSignature sig = MaskSignature::of(m);
  auto& group = groups_[sig.packed()];
  group.sig = sig;
  group.buckets[masked_key_of(sig, m)].push_back(id);
  ++group.size;
}

void TupleSpaceIndex::erase(const of::Match& m, FlowId id) {
  const MaskSignature sig = MaskSignature::of(m);
  const auto git = groups_.find(sig.packed());
  if (git == groups_.end()) return;
  auto& group = git->second;
  const auto bit = group.buckets.find(masked_key_of(sig, m));
  if (bit == group.buckets.end()) return;
  auto& ids = bit->second;
  const auto it = std::find(ids.begin(), ids.end(), id);
  if (it == ids.end()) return;
  ids.erase(it);
  if (ids.empty()) group.buckets.erase(bit);
  if (--group.size == 0) groups_.erase(git);
}

void TupleSpaceIndex::clear() { groups_.clear(); }

std::uint64_t StrictIndex::key_of(const of::Match& m, std::uint16_t priority) {
  Fnv h;
  h.mix(m.wildcards);
  h.mix(m.in_port);
  h.mix_mac(m.dl_src);
  h.mix_mac(m.dl_dst);
  h.mix(m.dl_vlan);
  h.mix(m.dl_vlan_pcp);
  h.mix(m.dl_type);
  h.mix(m.nw_tos);
  h.mix(m.nw_proto);
  h.mix(m.nw_src);
  h.mix(m.nw_dst);
  h.mix(m.tp_src);
  h.mix(m.tp_dst);
  h.mix(priority);
  return h.x;
}

void StrictIndex::insert(const of::Match& m, std::uint16_t priority, FlowId id) {
  buckets_[key_of(m, priority)].push_back(id);
}

void StrictIndex::erase(const of::Match& m, std::uint16_t priority, FlowId id) {
  const auto bit = buckets_.find(key_of(m, priority));
  if (bit == buckets_.end()) return;
  auto& ids = bit->second;
  const auto it = std::find(ids.begin(), ids.end(), id);
  if (it == ids.end()) return;
  ids.erase(it);
  if (ids.empty()) buckets_.erase(bit);
}

const std::vector<FlowId>* StrictIndex::candidates(const of::Match& m,
                                                   std::uint16_t priority) const {
  const auto it = buckets_.find(key_of(m, priority));
  return it == buckets_.end() ? nullptr : &it->second;
}

}  // namespace tango::tables
