// Tuple-space search indexes for the flow tables (OVS-style).
//
// Entries are grouped by their *normalized wildcard mask* (which exact
// fields are constrained plus the two IP prefix lengths). Within a group,
// every member constrains exactly the same bits, so "match.matches(pkt)"
// is equivalent to "masked packet key == masked match key" — each group is
// an exact-match hash table. A lookup hashes the packet once per group
// (group counts are small in practice: rule sets reuse a handful of masks)
// instead of testing every entry; candidates are still re-verified with
// matches()/subsumes(), which keeps hash collisions harmless and makes the
// index a pure accelerator with no observable behaviour of its own.
//
// StrictIndex is the companion exact (match, priority) hash used by
// OpenFlow strict operations and the replace-on-duplicate ADD path.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "openflow/match.h"
#include "tables/flow_entry.h"

namespace tango::tables {

/// Normalized wildcard pattern of a Match: a bit per constrained exact
/// field plus the two prefix lengths.
struct MaskSignature {
  std::uint16_t exact = 0;
  std::uint8_t src_plen = 0;
  std::uint8_t dst_plen = 0;

  bool operator==(const MaskSignature&) const = default;

  [[nodiscard]] std::uint32_t packed() const {
    return static_cast<std::uint32_t>(exact) |
           (static_cast<std::uint32_t>(src_plen) << 16) |
           (static_cast<std::uint32_t>(dst_plen) << 24);
  }

  /// True when a filter with this signature could subsume an entry stored
  /// under `other`: the filter constrains a subset of the fields, with
  /// prefixes no longer than the entry's.
  [[nodiscard]] bool constrains_subset_of(const MaskSignature& other) const {
    return (exact & ~other.exact) == 0 && src_plen <= other.src_plen &&
           dst_plen <= other.dst_plen;
  }

  static MaskSignature of(const of::Match& m);
};

/// Hash of the constrained field values of `m` under signature `sig`.
/// masked_key_of(sig, match) == masked_key_of(sig, packet) whenever
/// match.matches(packet) and MaskSignature::of(match) == sig.
std::uint64_t masked_key_of(const MaskSignature& sig, const of::Match& m);
std::uint64_t masked_key_of(const MaskSignature& sig, const of::PacketHeader& h);

class TupleSpaceIndex {
 public:
  void insert(const of::Match& m, FlowId id);
  void erase(const of::Match& m, FlowId id);
  void clear();

  [[nodiscard]] std::size_t group_count() const { return groups_.size(); }

  /// Invoke fn(id) for every entry in some group's bucket the packet hashes
  /// into. Callers re-verify with match.matches(pkt).
  template <typename Fn>
  void for_each_candidate(const of::PacketHeader& pkt, Fn&& fn) const {
    for (const auto& [key, group] : groups_) {
      (void)key;
      const auto it = group.buckets.find(masked_key_of(group.sig, pkt));
      if (it == group.buckets.end()) continue;
      for (const FlowId id : it->second) fn(id);
    }
  }

  /// Invoke fn(id) for every entry a filter with signature `filter_sig`
  /// could subsume. Groups with the identical signature collapse to one
  /// bucket probe; strictly-wider groups are scanned and callers verify
  /// with filter.subsumes().
  template <typename Fn>
  void for_each_subsumable(const of::Match& filter, Fn&& fn) const {
    const MaskSignature filter_sig = MaskSignature::of(filter);
    for (const auto& [key, group] : groups_) {
      (void)key;
      if (!filter_sig.constrains_subset_of(group.sig)) continue;
      if (group.sig == filter_sig) {
        const auto it = group.buckets.find(masked_key_of(group.sig, filter));
        if (it == group.buckets.end()) continue;
        for (const FlowId id : it->second) fn(id);
        continue;
      }
      for (const auto& [bucket_key, ids] : group.buckets) {
        (void)bucket_key;
        for (const FlowId id : ids) fn(id);
      }
    }
  }

 private:
  struct Group {
    MaskSignature sig;
    std::unordered_map<std::uint64_t, std::vector<FlowId>> buckets;
    std::size_t size = 0;
  };
  std::unordered_map<std::uint32_t, Group> groups_;
};

/// Exact (match, priority) index. Buckets hold ids in insertion order, so
/// the first verified candidate is the earliest-inserted duplicate —
/// matching the linear-scan find_strict it replaces.
class StrictIndex {
 public:
  void insert(const of::Match& m, std::uint16_t priority, FlowId id);
  void erase(const of::Match& m, std::uint16_t priority, FlowId id);
  void clear() { buckets_.clear(); }

  /// Candidate ids (insertion-ordered; may contain hash collisions — the
  /// caller verifies match equality). nullptr when the bucket is empty.
  [[nodiscard]] const std::vector<FlowId>* candidates(
      const of::Match& m, std::uint16_t priority) const;

 private:
  static std::uint64_t key_of(const of::Match& m, std::uint16_t priority);
  std::unordered_map<std::uint64_t, std::vector<FlowId>> buckets_;
};

}  // namespace tango::tables
