#include "tables/cache_policy.h"

#include <cassert>

namespace tango::tables {

double attribute_value(const FlowEntry& e, Attribute attr) {
  switch (attr) {
    case Attribute::kInsertionTime:
      return static_cast<double>(e.attrs.insert_time.ns());
    case Attribute::kUseTime:
      return static_cast<double>(e.attrs.last_use_time.ns());
    case Attribute::kTrafficCount:
      return static_cast<double>(e.attrs.traffic_count);
    case Attribute::kPriority:
      return static_cast<double>(e.priority);
  }
  return 0;
}

std::string attribute_name(Attribute attr) {
  switch (attr) {
    case Attribute::kInsertionTime: return "insertion_time";
    case Attribute::kUseTime: return "use_time";
    case Attribute::kTrafficCount: return "traffic_count";
    case Attribute::kPriority: return "priority";
  }
  return "?";
}

bool is_serial_attribute(Attribute attr) {
  return attr == Attribute::kInsertionTime || attr == Attribute::kUseTime;
}

bool LexCachePolicy::prefers(const FlowEntry& a, const FlowEntry& b) const {
  for (const auto& key : keys_) {
    const double va = attribute_value(a, key.attr);
    const double vb = attribute_value(b, key.attr);
    if (va == vb) continue;
    const bool a_higher = va > vb;
    return key.dir == Direction::kPreferHigh ? a_higher : !a_higher;
  }
  // Fully tied under the policy: arbitrary but deterministic (older id wins,
  // mirroring hardware that keeps the incumbent on ties).
  return a.id < b.id;
}

std::size_t LexCachePolicy::victim_index(
    std::span<const FlowEntry* const> entries) const {
  assert(!entries.empty());
  std::size_t worst = 0;
  for (std::size_t i = 1; i < entries.size(); ++i) {
    if (prefers(*entries[worst], *entries[i])) worst = i;
  }
  return worst;
}

std::string LexCachePolicy::describe() const {
  if (keys_.empty()) return "(ties only)";
  std::string out;
  for (const auto& key : keys_) {
    if (!out.empty()) out += ", ";
    out += attribute_name(key.attr);
    out += key.dir == Direction::kPreferHigh ? "(high stays)" : "(low stays)";
  }
  return out;
}

LexCachePolicy LexCachePolicy::fifo() {
  return LexCachePolicy{{PolicyKey{Attribute::kInsertionTime, Direction::kPreferHigh}}};
}

LexCachePolicy LexCachePolicy::lru() {
  return LexCachePolicy{{PolicyKey{Attribute::kUseTime, Direction::kPreferHigh}}};
}

LexCachePolicy LexCachePolicy::lfu() {
  return LexCachePolicy{{PolicyKey{Attribute::kTrafficCount, Direction::kPreferHigh}}};
}

LexCachePolicy LexCachePolicy::priority_based() {
  return LexCachePolicy{{PolicyKey{Attribute::kPriority, Direction::kPreferHigh}}};
}

LexCachePolicy LexCachePolicy::lex(std::vector<PolicyKey> keys) {
  return LexCachePolicy{std::move(keys)};
}

}  // namespace tango::tables
