// The paper's formal cache-policy model (§5.1):
//
//   [ATTRIB]   a policy examines a subset of {insertion time, use time,
//              traffic count, priority},
//   [MONOTONE] each attribute is compared by a monotone (increasing or
//              decreasing) function, and
//   [LEX]      flows are totally ordered lexicographically under some
//              permutation of those attributes; the lowest-ordered flow is
//              the eviction victim.
//
// One LexCachePolicy therefore expresses FIFO, LRU, LFU, priority-based
// caching and their compositions — and is exactly the object the Tango
// policy-inference algorithm (Algorithm 2) reconstructs from probes.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "tables/flow_entry.h"

namespace tango::tables {

enum class Attribute {
  kInsertionTime,
  kUseTime,
  kTrafficCount,
  kPriority,
};

/// Whether larger attribute values make a flow *more* likely to stay cached.
enum class Direction { kPreferHigh, kPreferLow };

struct PolicyKey {
  Attribute attr = Attribute::kInsertionTime;
  Direction dir = Direction::kPreferHigh;

  bool operator==(const PolicyKey&) const = default;
};

double attribute_value(const FlowEntry& e, Attribute attr);
std::string attribute_name(Attribute attr);

/// True for attributes whose values are unique by construction (strictly
/// serial timestamps); once such an attribute appears in the order, no
/// deeper key can ever be consulted (Algorithm 2's termination condition).
bool is_serial_attribute(Attribute attr);

class LexCachePolicy {
 public:
  LexCachePolicy() = default;
  explicit LexCachePolicy(std::vector<PolicyKey> keys) : keys_(std::move(keys)) {}

  /// True if `a` outranks `b` (i.e. `b` would be evicted before `a`).
  [[nodiscard]] bool prefers(const FlowEntry& a, const FlowEntry& b) const;

  /// Index of the eviction victim: the lowest-ordered entry. `candidate`
  /// may be compared too by callers that model "new element loses" cases.
  [[nodiscard]] std::size_t victim_index(std::span<const FlowEntry* const> entries) const;

  [[nodiscard]] const std::vector<PolicyKey>& keys() const { return keys_; }
  [[nodiscard]] std::string describe() const;

  bool operator==(const LexCachePolicy&) const = default;

  // --- classic policies expressed in the lex model -------------------------
  static LexCachePolicy fifo();            ///< evict oldest insertion
  static LexCachePolicy lru();             ///< evict least recently used
  static LexCachePolicy lfu();             ///< evict smallest traffic count
  static LexCachePolicy priority_based();  ///< evict lowest priority
  /// e.g. traffic first, priority tie-break, use-time final tie-break.
  static LexCachePolicy lex(std::vector<PolicyKey> keys);

 private:
  std::vector<PolicyKey> keys_;
};

}  // namespace tango::tables
