#include "tables/software_table.h"

#include <algorithm>

namespace tango::tables {

// Min-heap order on (insert time, insertion serial): the heap top is the
// oldest entry, ties resolved towards the earlier insertion — which is also
// the earlier table position, matching the original front-to-back scan.
bool SoftwareTable::age_after(const AgeRecord& a, const AgeRecord& b) {
  if (a.insert_ns != b.insert_ns) return a.insert_ns > b.insert_ns;
  return a.seq > b.seq;
}

void SoftwareTable::push_age(const FlowEntry& e, std::uint64_t seq) {
  age_heap_.push_back(AgeRecord{e.attrs.insert_time.ns(), seq, e.id});
  std::push_heap(age_heap_.begin(), age_heap_.end(), age_after);
}

void SoftwareTable::compact_age_heap() {
  if (age_heap_.size() <= 2 * entries_.size() + 64) return;
  std::vector<AgeRecord> kept;
  kept.reserve(entries_.size());
  for (const auto& r : age_heap_) {
    const auto it = pos_.find(r.id);
    if (it != pos_.end() &&
        entries_[it->second].attrs.insert_time.ns() == r.insert_ns) {
      kept.push_back(r);
    }
  }
  age_heap_ = std::move(kept);
  std::make_heap(age_heap_.begin(), age_heap_.end(), age_after);
}

bool SoftwareTable::insert(FlowEntry entry) {
  if (capacity_ != 0 && entries_.size() >= capacity_) return false;
  const std::size_t pos = entries_.size();
  const std::uint64_t seq = next_seq_++;
  entries_.push_back(std::move(entry));
  seqs_.push_back(seq);
  const FlowEntry& e = entries_[pos];
  pos_[e.id] = pos;
  tuple_.insert(e.match, e.id);
  strict_.insert(e.match, e.priority, e.id);
  if (is_timed(e)) ++timed_;
  push_age(e, seq);
  compact_age_heap();
  return true;
}

void SoftwareTable::remove_at(std::size_t pos) {
  FlowEntry& e = entries_[pos];
  if (is_timed(e)) --timed_;
  tuple_.erase(e.match, e.id);
  strict_.erase(e.match, e.priority, e.id);
  pos_.erase(e.id);
  for (std::size_t i = pos + 1; i < entries_.size(); ++i) --pos_[entries_[i].id];
  entries_.erase(entries_.begin() + static_cast<long>(pos));
  seqs_.erase(seqs_.begin() + static_cast<long>(pos));
}

std::optional<FlowEntry> SoftwareTable::erase(FlowId id) {
  const auto it = pos_.find(id);
  if (it == pos_.end()) return std::nullopt;
  const std::size_t pos = it->second;
  FlowEntry out = entries_[pos];
  remove_at(pos);
  return out;
}

std::vector<FlowEntry> SoftwareTable::remove_batch(
    const std::vector<std::size_t>& desc) {
  std::vector<FlowEntry> removed;
  removed.reserve(desc.size());
  for (const std::size_t p : desc) {
    FlowEntry& e = entries_[p];
    if (is_timed(e)) --timed_;
    tuple_.erase(e.match, e.id);
    strict_.erase(e.match, e.priority, e.id);
    pos_.erase(e.id);
    removed.push_back(std::move(e));
  }
  // One-pass compaction over the holes (desc is strictly descending, so its
  // reverse view is ascending).
  const std::size_t n = entries_.size();
  std::size_t write = desc.back();
  std::size_t next = desc.size();
  std::size_t next_hole = desc[next - 1];
  for (std::size_t read = write; read < n; ++read) {
    if (next > 0 && read == next_hole) {
      --next;
      next_hole = next > 0 ? desc[next - 1] : n;
      continue;
    }
    entries_[write] = std::move(entries_[read]);
    seqs_[write] = seqs_[read];
    pos_[entries_[write].id] = write;
    ++write;
  }
  entries_.resize(write);
  seqs_.resize(write);
  return removed;
}

std::vector<FlowEntry> SoftwareTable::erase_matching(const of::Match& filter) {
  scratch_.clear();
  tuple_.for_each_subsumable(filter, [&](FlowId id) {
    const std::size_t pos = pos_.find(id)->second;
    if (filter.subsumes(entries_[pos].match)) scratch_.push_back(pos);
  });
  if (scratch_.empty()) return {};
  // Removed entries come back in descending table order — the order the
  // original one-at-a-time reverse sweep produced.
  std::sort(scratch_.begin(), scratch_.end(), std::greater<>());
  return remove_batch(scratch_);
}

std::vector<FlowEntry> SoftwareTable::take_expired(SimTime now) {
  if (timed_ == 0) return {};
  // Expiry is time-based, not match-based, so collect by scan; the timed_
  // fast path above keeps the common (no timeouts resident) case O(1).
  scratch_.clear();
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].expired(now)) scratch_.push_back(i);
  }
  if (scratch_.empty()) return {};
  return remove_batch(scratch_);
}

std::optional<FlowEntry> SoftwareTable::pop_oldest() {
  while (!age_heap_.empty()) {
    const AgeRecord top = age_heap_.front();
    std::pop_heap(age_heap_.begin(), age_heap_.end(), age_after);
    age_heap_.pop_back();
    const auto it = pos_.find(top.id);
    if (it == pos_.end()) continue;  // stale: entry left the table
    const std::size_t pos = it->second;
    if (entries_[pos].attrs.insert_time.ns() != top.insert_ns) continue;
    FlowEntry out = entries_[pos];
    remove_at(pos);
    return out;
  }
  return std::nullopt;
}

FlowEntry* SoftwareTable::lookup(const of::PacketHeader& pkt) {
  // Winner: highest priority; ties go to the earliest-inserted entry
  // (lowest position), matching the original front-to-back strict-> scan.
  std::size_t best_pos = 0;
  bool found = false;
  tuple_.for_each_candidate(pkt, [&](FlowId id) {
    const std::size_t pos = pos_.find(id)->second;
    const FlowEntry& e = entries_[pos];
    if (!e.match.matches(pkt)) return;
    if (!found || e.priority > entries_[best_pos].priority ||
        (e.priority == entries_[best_pos].priority && pos < best_pos)) {
      best_pos = pos;
      found = true;
    }
  });
  return found ? &entries_[best_pos] : nullptr;
}

FlowEntry* SoftwareTable::find_strict(const of::Match& match, std::uint16_t priority) {
  const auto* ids = strict_.candidates(match, priority);
  if (ids == nullptr) return nullptr;
  // Bucket order is insertion order, and relative table order among equal
  // (match, priority) keys is insertion order too, so the first verified
  // candidate is the front-to-back scan's first hit.
  for (const FlowId id : *ids) {
    FlowEntry& e = entries_[pos_.find(id)->second];
    if (e.priority == priority && e.match == match) return &e;
  }
  return nullptr;
}

const FlowEntry* SoftwareTable::find_by_id(FlowId id) const {
  const auto it = pos_.find(id);
  return it == pos_.end() ? nullptr : &entries_[it->second];
}

FlowEntry* SoftwareTable::find_by_id(FlowId id) {
  const auto it = pos_.find(id);
  return it == pos_.end() ? nullptr : &entries_[it->second];
}

std::size_t SoftwareTable::modify_matching(const of::Match& filter,
                                           const of::ActionList& actions) {
  return for_each_matching(filter, [&](FlowEntry& e) { e.actions = actions; });
}

bool SoftwareTable::replace(FlowId id, FlowEntry entry) {
  const auto it = pos_.find(id);
  if (it == pos_.end()) return false;
  FlowEntry& old = entries_[it->second];
  if (is_timed(old)) --timed_;
  if (is_timed(entry)) ++timed_;
  old = std::move(entry);
  // The replacement restarts the entry's clock; record the new insertion
  // time under the original serial so age order still follows position.
  push_age(old, seqs_[it->second]);
  compact_age_heap();
  return true;
}

void SoftwareTable::clear() {
  entries_.clear();
  seqs_.clear();
  timed_ = 0;
  pos_.clear();
  tuple_.clear();
  strict_.clear();
  age_heap_.clear();
}

void MicroflowCache::insert(const of::PacketHeader& key, FlowId source_rule,
                            const of::ActionList& actions, SimTime now) {
  const std::uint64_t rule_seq = next_seq_++;
  const auto it = map_.find(key);
  std::uint64_t fifo_seq;
  if (it == map_.end()) {
    // Evict in FIFO order until a slot opens. Stale pairs (key since
    // evicted, invalidated, or re-keyed) don't shrink the map, so the loop
    // skips past them and removes exactly the victims an eagerly-maintained
    // FIFO would have.
    while (capacity_ != 0 && map_.size() >= capacity_ && !fifo_.empty()) {
      const auto& [k, fseq] = fifo_.front();
      const auto vit = map_.find(k);
      if (vit != map_.end() && vit->second.fifo_seq == fseq) map_.erase(vit);
      fifo_.pop_front();
    }
    fifo_seq = rule_seq;
    fifo_.emplace_back(key, fifo_seq);
  } else {
    // Overwriting a resident key keeps its FIFO position.
    fifo_seq = it->second.fifo_seq;
  }
  map_[key] = Entry{source_rule, actions, now, fifo_seq, rule_seq};
  by_rule_[source_rule].emplace_back(key, rule_seq);
  ++by_rule_total_;
  maybe_compact();
}

std::optional<MicroflowCache::Hit> MicroflowCache::lookup(
    const of::PacketHeader& key, SimTime now) {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  it->second.last_use = now;
  return Hit{it->second.source_rule, &it->second.actions};
}

void MicroflowCache::invalidate_rule(FlowId source_rule) {
  const auto it = by_rule_.find(source_rule);
  if (it == by_rule_.end()) return;
  for (const auto& [key, rseq] : it->second) {
    const auto mit = map_.find(key);
    if (mit != map_.end() && mit->second.rule_seq == rseq) map_.erase(mit);
  }
  by_rule_total_ -= it->second.size();
  by_rule_.erase(it);
  // fifo_ may keep stale pairs; eviction and compaction skip them lazily.
}

void MicroflowCache::maybe_compact() {
  if (fifo_.size() > 2 * map_.size() + 64) {
    std::erase_if(fifo_, [this](const auto& pair) {
      const auto it = map_.find(pair.first);
      return it == map_.end() || it->second.fifo_seq != pair.second;
    });
  }
  if (by_rule_total_ > 4 * map_.size() + 64) {
    by_rule_total_ = 0;
    for (auto it = by_rule_.begin(); it != by_rule_.end();) {
      auto& vec = it->second;
      std::erase_if(vec, [this](const auto& pair) {
        const auto mit = map_.find(pair.first);
        return mit == map_.end() || mit->second.rule_seq != pair.second;
      });
      if (vec.empty()) {
        it = by_rule_.erase(it);
      } else {
        by_rule_total_ += vec.size();
        ++it;
      }
    }
  }
}

void MicroflowCache::clear() {
  map_.clear();
  fifo_.clear();
  by_rule_.clear();
  by_rule_total_ = 0;
}

}  // namespace tango::tables
