#include "tables/software_table.h"

#include <algorithm>

namespace tango::tables {

bool SoftwareTable::insert(FlowEntry entry) {
  if (capacity_ != 0 && entries_.size() >= capacity_) return false;
  entries_.push_back(std::move(entry));
  return true;
}

std::optional<FlowEntry> SoftwareTable::erase(FlowId id) {
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const FlowEntry& e) { return e.id == id; });
  if (it == entries_.end()) return std::nullopt;
  FlowEntry out = std::move(*it);
  entries_.erase(it);
  return out;
}

std::vector<FlowEntry> SoftwareTable::erase_matching(const of::Match& filter) {
  std::vector<FlowEntry> removed;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (filter.subsumes(entries_[i].match)) {
      removed.push_back(std::move(entries_[i]));
      entries_.erase(entries_.begin() + static_cast<long>(i));
    }
  }
  return removed;
}

std::optional<FlowEntry> SoftwareTable::pop_oldest() {
  if (entries_.empty()) return std::nullopt;
  auto oldest = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->attrs.insert_time < oldest->attrs.insert_time) oldest = it;
  }
  FlowEntry out = std::move(*oldest);
  entries_.erase(oldest);
  return out;
}

FlowEntry* SoftwareTable::lookup(const of::PacketHeader& pkt) {
  FlowEntry* best = nullptr;
  for (auto& e : entries_) {
    if (!e.match.matches(pkt)) continue;
    if (best == nullptr || e.priority > best->priority) best = &e;
  }
  return best;
}

FlowEntry* SoftwareTable::find_strict(const of::Match& match, std::uint16_t priority) {
  for (auto& e : entries_) {
    if (e.priority == priority && e.match == match) return &e;
  }
  return nullptr;
}

std::size_t SoftwareTable::modify_matching(const of::Match& filter,
                                           const of::ActionList& actions) {
  std::size_t updated = 0;
  for (auto& e : entries_) {
    if (filter.subsumes(e.match)) {
      e.actions = actions;
      ++updated;
    }
  }
  return updated;
}

void MicroflowCache::insert(const of::PacketHeader& key, FlowId source_rule,
                            const of::ActionList& actions, SimTime now) {
  if (map_.find(key) == map_.end()) {
    while (capacity_ != 0 && map_.size() >= capacity_ && !fifo_.empty()) {
      map_.erase(fifo_.front());
      fifo_.pop_front();
    }
    fifo_.push_back(key);
  }
  map_[key] = Entry{source_rule, actions, now};
}

std::optional<MicroflowCache::Hit> MicroflowCache::lookup(
    const of::PacketHeader& key, SimTime now) {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  it->second.last_use = now;
  return Hit{it->second.source_rule, &it->second.actions};
}

void MicroflowCache::invalidate_rule(FlowId source_rule) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.source_rule == source_rule) {
      it = map_.erase(it);
    } else {
      ++it;
    }
  }
  // fifo_ may keep stale keys; they are skipped lazily on eviction.
  std::erase_if(fifo_, [this](const of::PacketHeader& k) {
    return map_.find(k) == map_.end();
  });
}

void MicroflowCache::clear() {
  map_.clear();
  fifo_.clear();
}

}  // namespace tango::tables
