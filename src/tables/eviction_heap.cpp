#include "tables/eviction_heap.h"

#include <algorithm>
#include <cassert>

namespace tango::tables {

void EvictionHeap::set_policy(const LexCachePolicy* policy) {
  policy_ = policy;
  heap_.clear();
  hit_sensitive_ = false;
  if (policy_ != nullptr) {
    assert(policy_->keys().size() <= kMaxKeys);
    for (const auto& key : policy_->keys()) {
      if (key.attr == Attribute::kUseTime ||
          key.attr == Attribute::kTrafficCount) {
        hit_sensitive_ = true;
      }
    }
  }
}

EvictionHeap::Record EvictionHeap::snapshot(const FlowEntry& e) const {
  Record r;
  const auto& keys = policy_->keys();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    r.key[i] = attribute_value(e, keys[i].attr);
  }
  r.id = e.id;
  return r;
}

bool EvictionHeap::fresh(const Record& r, const FlowEntry& live) const {
  const auto& keys = policy_->keys();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (r.key[i] != attribute_value(live, keys[i].attr)) return false;
  }
  return true;
}

bool EvictionHeap::record_prefers(const Record& a, const Record& b) const {
  const auto& keys = policy_->keys();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const double va = a.key[i];
    const double vb = b.key[i];
    if (va == vb) continue;
    const bool a_higher = va > vb;
    return keys[i].dir == Direction::kPreferHigh ? a_higher : !a_higher;
  }
  return a.id < b.id;
}

void EvictionHeap::push(const FlowEntry& e) {
  if (policy_ == nullptr) return;
  heap_.push_back(snapshot(e));
  std::push_heap(heap_.begin(), heap_.end(),
                 [this](const Record& a, const Record& b) {
                   return record_prefers(a, b);
                 });
}

void EvictionHeap::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(),
                [this](const Record& a, const Record& b) {
                  return record_prefers(a, b);
                });
  heap_.pop_back();
}

void EvictionHeap::rebuild() {
  std::make_heap(heap_.begin(), heap_.end(),
                 [this](const Record& a, const Record& b) {
                   return record_prefers(a, b);
                 });
}

}  // namespace tango::tables
