#include "tables/tcam.h"

#include <algorithm>

namespace tango::tables {

std::string to_string(TcamMode mode) {
  switch (mode) {
    case TcamMode::kSingleWide: return "single-wide";
    case TcamMode::kDoubleWide: return "double-wide";
    case TcamMode::kAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<std::size_t> Tcam::slots_for(const of::Match& match) const {
  const of::MatchLayer layer = match.layer();
  switch (config_.mode) {
    case TcamMode::kSingleWide:
      if (layer == of::MatchLayer::kL2AndL3) return std::nullopt;
      return 1;
    case TcamMode::kDoubleWide:
      return 2;
    case TcamMode::kAdaptive:
      return layer == of::MatchLayer::kL2AndL3 ? 2 : 1;
  }
  return std::nullopt;
}

bool Tcam::can_fit(const of::Match& match) const {
  const auto slots = slots_for(match);
  return slots.has_value() && slots_used_ + *slots <= config_.capacity_slots;
}

TcamInsertOutcome Tcam::insert(FlowEntry entry) {
  TcamInsertOutcome out;
  const auto slots = slots_for(entry.match);
  if (!slots) {
    out.reject_reason = "entry shape unsupported in " + to_string(config_.mode) + " mode";
    return out;
  }
  if (slots_used_ + *slots > config_.capacity_slots) {
    out.reject_reason = "TCAM full";
    return out;
  }
  // Physical array is ascending by priority; insert after any equal-priority
  // entries so equal-priority appends cost zero shifts.
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry.priority,
      [](std::uint16_t p, const FlowEntry& e) { return p < e.priority; });
  out.shifts = static_cast<std::size_t>(entries_.end() - pos);
  entries_.insert(pos, std::move(entry));
  slots_used_ += *slots;
  out.accepted = true;
  return out;
}

TcamEraseOutcome Tcam::erase(FlowId id) {
  TcamEraseOutcome out;
  const auto it = std::find_if(entries_.begin(), entries_.end(),
                               [&](const FlowEntry& e) { return e.id == id; });
  if (it == entries_.end()) return out;
  const auto slots = slots_for(it->match);
  slots_used_ -= slots.value_or(0);
  out.shifts = static_cast<std::size_t>(entries_.end() - it) - 1;
  entries_.erase(it);
  out.removed = 1;
  return out;
}

std::vector<FlowEntry> Tcam::erase_matching(const of::Match& filter,
                                            std::size_t* shifts_out) {
  std::vector<FlowEntry> removed;
  std::size_t shifts = 0;
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (filter.subsumes(entries_[i].match)) {
      const auto slots = slots_for(entries_[i].match);
      slots_used_ -= slots.value_or(0);
      shifts += entries_.size() - i - 1;
      removed.push_back(std::move(entries_[i]));
      entries_.erase(entries_.begin() + static_cast<long>(i));
    }
  }
  if (shifts_out != nullptr) *shifts_out = shifts;
  return removed;
}

FlowEntry* Tcam::lookup(const of::PacketHeader& pkt) {
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].match.matches(pkt)) return &entries_[i];
  }
  return nullptr;
}

FlowEntry* Tcam::find_strict(const of::Match& match, std::uint16_t priority) {
  for (auto& e : entries_) {
    if (e.priority == priority && e.match == match) return &e;
  }
  return nullptr;
}

std::size_t Tcam::modify_matching(const of::Match& filter,
                                  const of::ActionList& actions) {
  std::size_t updated = 0;
  for (auto& e : entries_) {
    if (filter.subsumes(e.match)) {
      e.actions = actions;
      ++updated;
    }
  }
  return updated;
}

void Tcam::clear() {
  entries_.clear();
  slots_used_ = 0;
}

}  // namespace tango::tables
