#include "tables/tcam.h"

#include <algorithm>
#include <cassert>

namespace tango::tables {

std::string to_string(TcamMode mode) {
  switch (mode) {
    case TcamMode::kSingleWide: return "single-wide";
    case TcamMode::kDoubleWide: return "double-wide";
    case TcamMode::kAdaptive: return "adaptive";
  }
  return "?";
}

std::optional<std::size_t> Tcam::slots_for(const of::Match& match) const {
  const of::MatchLayer layer = match.layer();
  switch (config_.mode) {
    case TcamMode::kSingleWide:
      if (layer == of::MatchLayer::kL2AndL3) return std::nullopt;
      return 1;
    case TcamMode::kDoubleWide:
      return 2;
    case TcamMode::kAdaptive:
      return layer == of::MatchLayer::kL2AndL3 ? 2 : 1;
  }
  return std::nullopt;
}

bool Tcam::can_fit(const of::Match& match) const {
  const auto slots = slots_for(match);
  return slots.has_value() && slots_used_ + *slots <= config_.capacity_slots;
}

void Tcam::index_entry(const FlowEntry& e, std::size_t pos) {
  pos_[e.id] = pos;
  tuple_.insert(e.match, e.id);
  strict_.insert(e.match, e.priority, e.id);
  if (is_timed(e)) ++timed_;
  heap_.push(e);
}

TcamInsertOutcome Tcam::insert(FlowEntry entry) {
  TcamInsertOutcome out;
  const auto slots = slots_for(entry.match);
  if (!slots) {
    out.reject_reason = "entry shape unsupported in " + to_string(config_.mode) + " mode";
    return out;
  }
  if (slots_used_ + *slots > config_.capacity_slots) {
    out.reject_reason = "TCAM full";
    return out;
  }
  // Physical array is ascending by priority; insert after any equal-priority
  // entries so equal-priority appends cost zero shifts.
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), entry.priority,
      [](std::uint16_t p, const FlowEntry& e) { return p < e.priority; });
  const std::size_t pos = static_cast<std::size_t>(it - entries_.begin());
  out.shifts = entries_.size() - pos;
  for (std::size_t i = pos; i < entries_.size(); ++i) ++pos_[entries_[i].id];
  entries_.insert(it, std::move(entry));
  index_entry(entries_[pos], pos);
  slots_used_ += *slots;
  heap_.maybe_compact(entries_.size(),
                      [this](FlowId id) { return find_by_id(id); });
  out.accepted = true;
  return out;
}

TcamEraseOutcome Tcam::erase(FlowId id) {
  TcamEraseOutcome out;
  const auto it = pos_.find(id);
  if (it == pos_.end()) return out;
  const std::size_t pos = it->second;
  FlowEntry& e = entries_[pos];
  slots_used_ -= slots_for(e.match).value_or(0);
  if (is_timed(e)) --timed_;
  tuple_.erase(e.match, e.id);
  strict_.erase(e.match, e.priority, e.id);
  pos_.erase(it);
  out.shifts = entries_.size() - pos - 1;
  for (std::size_t i = pos + 1; i < entries_.size(); ++i) --pos_[entries_[i].id];
  entries_.erase(entries_.begin() + static_cast<long>(pos));
  out.removed = 1;
  return out;
}

std::optional<FlowEntry> Tcam::take(FlowId id, std::size_t* shifts) {
  const auto it = pos_.find(id);
  if (it == pos_.end()) return std::nullopt;
  FlowEntry out = entries_[it->second];
  const auto res = erase(id);
  if (shifts != nullptr) *shifts += res.shifts;
  return out;
}

std::vector<FlowEntry> Tcam::remove_batch(const std::vector<std::size_t>& desc,
                                          std::size_t* shifts_out) {
  const std::size_t n = entries_.size();
  std::size_t shifts = 0;
  std::vector<FlowEntry> removed;
  removed.reserve(desc.size());
  // Removing position p_j as the j-th one-at-a-time erasure (descending
  // order, j entries already gone) moves (n - j) - p_j - 1 entries.
  for (std::size_t j = 0; j < desc.size(); ++j) {
    const std::size_t p = desc[j];
    FlowEntry& e = entries_[p];
    shifts += n - j - 1 - p;
    slots_used_ -= slots_for(e.match).value_or(0);
    if (is_timed(e)) --timed_;
    tuple_.erase(e.match, e.id);
    strict_.erase(e.match, e.priority, e.id);
    pos_.erase(e.id);
    removed.push_back(std::move(e));
  }
  // One-pass compaction over the holes (desc is strictly descending, so the
  // reverse view is ascending).
  std::size_t write = desc.back();
  std::size_t next = desc.size();  // walks desc from the back (ascending)
  std::size_t next_hole = desc[next - 1];
  for (std::size_t read = write; read < n; ++read) {
    if (next > 0 && read == next_hole) {
      --next;
      next_hole = next > 0 ? desc[next - 1] : n;
      continue;
    }
    entries_[write] = std::move(entries_[read]);
    pos_[entries_[write].id] = write;
    ++write;
  }
  entries_.resize(write);
  if (shifts_out != nullptr) *shifts_out = shifts;
  return removed;
}

std::vector<FlowEntry> Tcam::erase_matching(const of::Match& filter,
                                            std::size_t* shifts_out) {
  if (shifts_out != nullptr) *shifts_out = 0;
  scratch_.clear();
  tuple_.for_each_subsumable(filter, [&](FlowId id) {
    const std::size_t pos = pos_.find(id)->second;
    if (filter.subsumes(entries_[pos].match)) scratch_.push_back(pos);
  });
  if (scratch_.empty()) return {};
  std::sort(scratch_.begin(), scratch_.end(), std::greater<>());
  return remove_batch(scratch_, shifts_out);
}

std::vector<FlowEntry> Tcam::take_expired(SimTime now) {
  if (timed_ == 0) return {};
  scratch_.clear();
  for (std::size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i].expired(now)) scratch_.push_back(i);
  }
  if (scratch_.empty()) return {};
  return remove_batch(scratch_, nullptr);
}

FlowEntry* Tcam::lookup(const of::PacketHeader& pkt) {
  // Physical order is ascending (priority, insertion age), so the top-down
  // first match of a real TCAM is simply the matching entry with the
  // greatest position.
  std::size_t best_pos = 0;
  bool found = false;
  tuple_.for_each_candidate(pkt, [&](FlowId id) {
    const std::size_t pos = pos_.find(id)->second;
    if (!entries_[pos].match.matches(pkt)) return;
    if (!found || pos > best_pos) {
      best_pos = pos;
      found = true;
    }
  });
  return found ? &entries_[best_pos] : nullptr;
}

FlowEntry* Tcam::find_strict(const of::Match& match, std::uint16_t priority) {
  const auto* ids = strict_.candidates(match, priority);
  if (ids == nullptr) return nullptr;
  for (const FlowId id : *ids) {
    FlowEntry& e = entries_[pos_.find(id)->second];
    if (e.priority == priority && e.match == match) return &e;
  }
  return nullptr;
}

const FlowEntry* Tcam::find_by_id(FlowId id) const {
  const auto it = pos_.find(id);
  return it == pos_.end() ? nullptr : &entries_[it->second];
}

FlowEntry* Tcam::find_by_id(FlowId id) {
  const auto it = pos_.find(id);
  return it == pos_.end() ? nullptr : &entries_[it->second];
}

std::size_t Tcam::modify_matching(const of::Match& filter,
                                  const of::ActionList& actions) {
  return for_each_matching(filter, [&](FlowEntry& e) { e.actions = actions; });
}

bool Tcam::replace(FlowId id, FlowEntry entry) {
  const auto it = pos_.find(id);
  if (it == pos_.end()) return false;
  FlowEntry& old = entries_[it->second];
  assert(entry.id == id && entry.match == old.match &&
         entry.priority == old.priority);
  if (is_timed(old)) --timed_;
  if (is_timed(entry)) ++timed_;
  old = std::move(entry);
  heap_.push(old);
  heap_.maybe_compact(entries_.size(),
                      [this](FlowId id2) { return find_by_id(id2); });
  return true;
}

void Tcam::set_eviction_policy(const LexCachePolicy* policy) {
  heap_.set_policy(policy);
  if (policy != nullptr) {
    for (const auto& e : entries_) heap_.push(e);
  }
}

std::optional<FlowId> Tcam::victim_id() {
  assert(heap_.policy() != nullptr);
  return heap_.victim([this](FlowId id) { return find_by_id(id); });
}

void Tcam::note_attrs_changed(FlowId id) {
  if (heap_.policy() == nullptr) return;
  // Hits only mutate use time / traffic count; when the policy ranks by
  // neither, the entry's existing records are still fresh and re-pushing
  // would only accumulate duplicates.
  if (!heap_.rank_depends_on_hits()) return;
  if (const auto* e = find_by_id(id)) {
    heap_.push(*e);
    heap_.maybe_compact(entries_.size(),
                        [this](FlowId id2) { return find_by_id(id2); });
  }
}

void Tcam::clear() {
  entries_.clear();
  slots_used_ = 0;
  timed_ = 0;
  pos_.clear();
  tuple_.clear();
  strict_.clear();
  heap_.clear();
}

}  // namespace tango::tables
