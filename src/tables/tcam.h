// TCAM model with physical-ordering (shift) accounting.
//
// Hardware TCAMs resolve priority by physical position: the entry array is
// kept sorted by rule priority, and inserting a rule "between" existing
// entries forces the switch software to shift entries to open a slot. That
// shifting is what makes descending-priority installation dramatically
// slower than ascending on real switches (paper §3, Fig 3(c)); this model
// counts the shifts so the latency model can charge for them.
//
// Capacity accounting follows §3's Table 1 discussion: a TCAM operates in
// single-wide mode (entries match only L2 *or* only L3 headers, 1 slot
// each), double-wide mode (every entry occupies 2 slots, any layer mix), or
// adaptive mode (L2-only/L3-only cost 1 slot, L2+L3 cost 2 — Switch #3).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "tables/flow_entry.h"

namespace tango::tables {

enum class TcamMode { kSingleWide, kDoubleWide, kAdaptive };

std::string to_string(TcamMode mode);

struct TcamConfig {
  std::size_t capacity_slots = 4096;
  TcamMode mode = TcamMode::kSingleWide;
};

struct TcamInsertOutcome {
  bool accepted = false;
  std::size_t shifts = 0;        ///< entries physically moved to open the slot
  std::string reject_reason;     ///< set when !accepted
};

struct TcamEraseOutcome {
  std::size_t removed = 0;
  std::size_t shifts = 0;        ///< compaction moves
};

class Tcam {
 public:
  explicit Tcam(TcamConfig config) : config_(config) {}

  /// Slots an entry of this shape occupies, or nullopt if the mode cannot
  /// hold it at all (e.g. L2+L3 in single-wide mode).
  [[nodiscard]] std::optional<std::size_t> slots_for(const of::Match& match) const;

  [[nodiscard]] bool can_fit(const of::Match& match) const;

  /// Insert keeping priority order. Rejects when slots are exhausted or the
  /// entry shape is unsupported; never evicts (eviction is the owning
  /// switch's cache-policy decision).
  TcamInsertOutcome insert(FlowEntry entry);

  /// Remove by flow id. Counts compaction shifts.
  TcamEraseOutcome erase(FlowId id);

  /// Remove all entries whose match is subsumed by `filter` (non-strict
  /// OpenFlow delete). Returns removed entries.
  std::vector<FlowEntry> erase_matching(const of::Match& filter,
                                        std::size_t* shifts_out = nullptr);

  /// Highest-priority entry matching the packet (ties: most recent insert).
  FlowEntry* lookup(const of::PacketHeader& pkt);

  /// Exact (match, priority) find, nullptr if absent.
  FlowEntry* find_strict(const of::Match& match, std::uint16_t priority);

  /// In-place modification of actions for all entries subsumed by `filter`
  /// (OpenFlow MODIFY). Returns number updated; no shifts are incurred.
  std::size_t modify_matching(const of::Match& filter, const of::ActionList& actions);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t slots_used() const { return slots_used_; }
  [[nodiscard]] std::size_t slots_total() const { return config_.capacity_slots; }
  [[nodiscard]] const TcamConfig& config() const { return config_; }

  /// Entries in physical (ascending-priority) order.
  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }
  [[nodiscard]] std::vector<FlowEntry>& entries() { return entries_; }

  void clear();

 private:
  TcamConfig config_;
  std::vector<FlowEntry> entries_;  // ascending priority; equal-priority FIFO
  std::size_t slots_used_ = 0;
};

}  // namespace tango::tables
