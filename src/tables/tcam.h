// TCAM model with physical-ordering (shift) accounting.
//
// Hardware TCAMs resolve priority by physical position: the entry array is
// kept sorted by rule priority, and inserting a rule "between" existing
// entries forces the switch software to shift entries to open a slot. That
// shifting is what makes descending-priority installation dramatically
// slower than ascending on real switches (paper §3, Fig 3(c)); this model
// counts the shifts so the latency model can charge for them.
//
// Capacity accounting follows §3's Table 1 discussion: a TCAM operates in
// single-wide mode (entries match only L2 *or* only L3 headers, 1 slot
// each), double-wide mode (every entry occupies 2 slots, any layer mix), or
// adaptive mode (L2-only/L3-only cost 1 slot, L2+L3 cost 2 — Switch #3).
//
// The physical array is the source of truth (entries() order is the
// observable physical order and the shift counts derive from it), but all
// point operations go through side indexes so nothing scans the array:
// a tuple-space index for lookup/subsumption, a strict (match, priority)
// hash for OpenFlow strict ops, an id -> position map, and a lazy eviction
// heap when a cache policy is attached. The indexes are accelerators only —
// results are bit-identical to the linear scans they replaced (see the
// ReferenceTcam differential suite in tests/test_table_diff.cpp).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tables/eviction_heap.h"
#include "tables/flow_entry.h"
#include "tables/tuple_index.h"

namespace tango::tables {

enum class TcamMode { kSingleWide, kDoubleWide, kAdaptive };

std::string to_string(TcamMode mode);

struct TcamConfig {
  std::size_t capacity_slots = 4096;
  TcamMode mode = TcamMode::kSingleWide;
};

struct TcamInsertOutcome {
  bool accepted = false;
  std::size_t shifts = 0;        ///< entries physically moved to open the slot
  std::string reject_reason;     ///< set when !accepted
};

struct TcamEraseOutcome {
  std::size_t removed = 0;
  std::size_t shifts = 0;        ///< compaction moves
};

class Tcam {
 public:
  explicit Tcam(TcamConfig config) : config_(config) {}

  /// Slots an entry of this shape occupies, or nullopt if the mode cannot
  /// hold it at all (e.g. L2+L3 in single-wide mode).
  [[nodiscard]] std::optional<std::size_t> slots_for(const of::Match& match) const;

  [[nodiscard]] bool can_fit(const of::Match& match) const;

  /// Insert keeping priority order. Rejects when slots are exhausted or the
  /// entry shape is unsupported; never evicts (eviction is the owning
  /// switch's cache-policy decision).
  TcamInsertOutcome insert(FlowEntry entry);

  /// Remove by flow id. Counts compaction shifts.
  TcamEraseOutcome erase(FlowId id);

  /// Remove by flow id, returning the entry. Compaction shifts are *added*
  /// to `*shifts` when non-null (callers accumulate across levels).
  std::optional<FlowEntry> take(FlowId id, std::size_t* shifts = nullptr);

  /// Remove all entries whose match is subsumed by `filter` (non-strict
  /// OpenFlow delete). Returns removed entries.
  std::vector<FlowEntry> erase_matching(const of::Match& filter,
                                        std::size_t* shifts_out = nullptr);

  /// Remove every entry whose idle/hard timeout elapsed by `now`. O(1) when
  /// no resident entry carries a timeout.
  std::vector<FlowEntry> take_expired(SimTime now);

  /// Highest-priority entry matching the packet (ties: most recent insert).
  FlowEntry* lookup(const of::PacketHeader& pkt);

  /// Exact (match, priority) find, nullptr if absent.
  FlowEntry* find_strict(const of::Match& match, std::uint16_t priority);

  [[nodiscard]] const FlowEntry* find_by_id(FlowId id) const;
  FlowEntry* find_by_id(FlowId id);

  /// Apply `fn` to every entry subsumed by `filter`, in physical order.
  /// `fn` must not change an entry's match, priority, or id (use
  /// note_attrs_changed() after mutating policy attributes). Returns the
  /// number of entries visited.
  template <typename Fn>
  std::size_t for_each_matching(const of::Match& filter, Fn&& fn) {
    scratch_.clear();
    tuple_.for_each_subsumable(filter, [&](FlowId id) {
      const std::size_t pos = pos_.find(id)->second;
      if (filter.subsumes(entries_[pos].match)) scratch_.push_back(pos);
    });
    std::sort(scratch_.begin(), scratch_.end());
    for (const std::size_t pos : scratch_) fn(entries_[pos]);
    return scratch_.size();
  }

  /// In-place modification of actions for all entries subsumed by `filter`
  /// (OpenFlow MODIFY). Returns number updated; no shifts are incurred.
  std::size_t modify_matching(const of::Match& filter, const of::ActionList& actions);

  /// Overwrite the entry with this id in place (the OpenFlow ADD-replaces-
  /// duplicate path). The replacement must carry the same id, match, and
  /// priority; position and shift state are untouched. False if absent.
  bool replace(FlowId id, FlowEntry entry);

  // --- cache-policy eviction (kPolicyCache levels) -------------------------
  /// Attach the owning switch's policy (non-owning; nullptr detaches).
  /// Enables victim_id(); resident entries are re-indexed into the heap.
  void set_eviction_policy(const LexCachePolicy* policy);

  /// The policy's eviction victim among resident entries — identical to
  /// LexCachePolicy::victim_index over entries() — or nullopt when empty.
  /// Requires an attached policy.
  std::optional<FlowId> victim_id();

  /// Re-rank `id` after an external mutation of its policy attributes
  /// (e.g. record_hit). No-op when no policy is attached.
  void note_attrs_changed(FlowId id);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t slots_used() const { return slots_used_; }
  [[nodiscard]] std::size_t slots_total() const { return config_.capacity_slots; }
  [[nodiscard]] const TcamConfig& config() const { return config_; }

  /// Shrink (or grow) raw slot capacity in place — models a partial
  /// hardware failure or firmware change. The caller must first evict
  /// entries until slots_used() fits the new capacity (asserted).
  void set_capacity_slots(std::size_t n) {
    assert(slots_used_ <= n);
    config_.capacity_slots = n;
  }

  /// Entries in physical (ascending-priority) order.
  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }

  void clear();

 private:
  static bool is_timed(const FlowEntry& e) {
    return e.idle_timeout != 0 || e.hard_timeout != 0;
  }
  void index_entry(const FlowEntry& e, std::size_t pos);
  /// Remove the entries at `desc` (positions, strictly descending), in that
  /// order, mirroring the shift accounting of one-at-a-time erasure.
  std::vector<FlowEntry> remove_batch(const std::vector<std::size_t>& desc,
                                      std::size_t* shifts_out);

  TcamConfig config_;
  std::vector<FlowEntry> entries_;  // ascending priority; equal-priority FIFO
  std::size_t slots_used_ = 0;
  std::size_t timed_ = 0;           // resident entries with a timeout set
  std::unordered_map<FlowId, std::size_t> pos_;
  TupleSpaceIndex tuple_;
  StrictIndex strict_;
  EvictionHeap heap_;
  std::vector<std::size_t> scratch_;  // candidate positions, reused
};

}  // namespace tango::tables
