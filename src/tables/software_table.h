// Software flow tables: the user-space wildcard table (virtually unbounded;
// the *simulated* lookup stays slow via the path-delay model) and the kernel
// exact-match microflow cache that OVS populates from data-plane traffic
// (§3 "Diverse flow installation behaviors": one user-space entry can map to
// many kernel microflows).
//
// Both tables are index-backed so wall-clock cost per simulated operation
// stays near O(1): the wildcard table shares the TCAM's tuple-space/strict/
// id indexes plus a lazy min-heap over insertion times for pop_oldest; the
// microflow cache keeps a per-rule key index and a sequence-guarded FIFO so
// rule invalidation no longer walks the whole cache. Observable behaviour is
// bit-identical to the linear-scan implementations these replaced (see
// tests/test_table_diff.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tables/flow_entry.h"
#include "tables/tuple_index.h"

namespace tango::tables {

/// Priority-ordered wildcard table; capacity 0 means unbounded. Entries are
/// kept in insertion order (the observable order of entries() and stats).
class SoftwareTable {
 public:
  explicit SoftwareTable(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Insert; fails only when a finite capacity is exhausted.
  bool insert(FlowEntry entry);

  /// Remove by id; returns the removed entry if present.
  std::optional<FlowEntry> erase(FlowId id);

  /// Remove all entries subsumed by `filter`.
  std::vector<FlowEntry> erase_matching(const of::Match& filter);

  /// Remove every entry whose idle/hard timeout elapsed by `now`. O(1) when
  /// no resident entry carries a timeout.
  std::vector<FlowEntry> take_expired(SimTime now);

  /// Pop the oldest-inserted entry (Switch #1's FIFO promotion source).
  /// Ties on insertion time break towards the earlier position.
  std::optional<FlowEntry> pop_oldest();

  FlowEntry* lookup(const of::PacketHeader& pkt);
  FlowEntry* find_strict(const of::Match& match, std::uint16_t priority);

  [[nodiscard]] const FlowEntry* find_by_id(FlowId id) const;
  FlowEntry* find_by_id(FlowId id);

  /// Apply `fn` to every entry subsumed by `filter`, in table order. `fn`
  /// must not change an entry's match, priority, id, or insertion time.
  /// Returns the number of entries visited.
  template <typename Fn>
  std::size_t for_each_matching(const of::Match& filter, Fn&& fn) {
    scratch_.clear();
    tuple_.for_each_subsumable(filter, [&](FlowId id) {
      const std::size_t pos = pos_.find(id)->second;
      if (filter.subsumes(entries_[pos].match)) scratch_.push_back(pos);
    });
    std::sort(scratch_.begin(), scratch_.end());
    for (const std::size_t pos : scratch_) fn(entries_[pos]);
    return scratch_.size();
  }

  std::size_t modify_matching(const of::Match& filter, const of::ActionList& actions);

  /// Overwrite the entry with this id in place (ADD-replaces-duplicate).
  /// Must carry the same id, match, and priority; false if absent.
  bool replace(FlowId id, FlowEntry entry);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool unbounded() const { return capacity_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }
  void clear();

 private:
  static bool is_timed(const FlowEntry& e) {
    return e.idle_timeout != 0 || e.hard_timeout != 0;
  }
  struct AgeRecord {
    std::int64_t insert_ns = 0;
    std::uint64_t seq = 0;  ///< insertion serial; orders equal timestamps
    FlowId id = 0;
  };
  static bool age_after(const AgeRecord& a, const AgeRecord& b);
  void push_age(const FlowEntry& e, std::uint64_t seq);
  void compact_age_heap();
  void remove_at(std::size_t pos);
  /// Remove the entries at `desc` (positions, strictly descending), in that
  /// order, with one-pass compaction.
  std::vector<FlowEntry> remove_batch(const std::vector<std::size_t>& desc);

  std::size_t capacity_;
  std::vector<FlowEntry> entries_;  // insertion order
  std::vector<std::uint64_t> seqs_;  // parallel to entries_
  std::uint64_t next_seq_ = 0;
  std::size_t timed_ = 0;
  std::unordered_map<FlowId, std::size_t> pos_;
  TupleSpaceIndex tuple_;
  StrictIndex strict_;
  /// Lazy min-heap on (insert_ns, seq); stale records (id gone or
  /// insert time changed by replacement) are discarded on pop.
  std::vector<AgeRecord> age_heap_;
  std::vector<std::size_t> scratch_;
};

/// Exact-match cache keyed by full packet header. FIFO-evicting, like the
/// bounded kernel flow cache in OVS.
///
/// The FIFO and the per-rule index hold (key, sequence) pairs and are
/// cleaned lazily: a pair is live only while the mapped entry still carries
/// the same sequence, so eviction order and invalidation results are
/// identical to eagerly-maintained structures without the O(cache) sweeps.
class MicroflowCache {
 public:
  explicit MicroflowCache(std::size_t capacity = 200000) : capacity_(capacity) {}

  /// Cache the forwarding decision for this exact header. The entry
  /// remembers which wildcard rule produced it so stats can be attributed.
  void insert(const of::PacketHeader& key, FlowId source_rule,
              const of::ActionList& actions, SimTime now);

  struct Hit {
    FlowId source_rule;
    const of::ActionList* actions;
  };
  std::optional<Hit> lookup(const of::PacketHeader& key, SimTime now);

  /// Drop every microflow derived from the given wildcard rule (rule
  /// deletion/modification must invalidate its microflows). O(microflows
  /// of that rule), not O(cache).
  void invalidate_rule(FlowId source_rule);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool contains(const of::PacketHeader& key) const {
    return map_.find(key) != map_.end();
  }
  void clear();

 private:
  struct Entry {
    FlowId source_rule;
    of::ActionList actions;
    SimTime last_use;
    std::uint64_t fifo_seq = 0;  ///< constant while the key stays resident
    std::uint64_t rule_seq = 0;  ///< bumped on every (re)insert
  };
  void maybe_compact();

  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<of::PacketHeader, Entry, of::PacketHeaderHash> map_;
  std::deque<std::pair<of::PacketHeader, std::uint64_t>> fifo_;
  std::unordered_map<FlowId,
                     std::vector<std::pair<of::PacketHeader, std::uint64_t>>>
      by_rule_;
  std::size_t by_rule_total_ = 0;
};

}  // namespace tango::tables
