// Software flow tables: the user-space wildcard table (virtually unbounded,
// slow linear match) and the kernel exact-match microflow cache that OVS
// populates from data-plane traffic (§3 "Diverse flow installation
// behaviors": one user-space entry can map to many kernel microflows).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "tables/flow_entry.h"

namespace tango::tables {

/// Priority-ordered wildcard table. Lookup is linear (that is what makes the
/// slow path slow); capacity 0 means unbounded.
class SoftwareTable {
 public:
  explicit SoftwareTable(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Insert; fails only when a finite capacity is exhausted.
  bool insert(FlowEntry entry);

  /// Remove by id; returns the removed entry if present.
  std::optional<FlowEntry> erase(FlowId id);

  /// Remove all entries subsumed by `filter`.
  std::vector<FlowEntry> erase_matching(const of::Match& filter);

  /// Pop the oldest-inserted entry (Switch #1's FIFO promotion source).
  std::optional<FlowEntry> pop_oldest();

  FlowEntry* lookup(const of::PacketHeader& pkt);
  FlowEntry* find_strict(const of::Match& match, std::uint16_t priority);
  std::size_t modify_matching(const of::Match& filter, const of::ActionList& actions);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool unbounded() const { return capacity_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }
  [[nodiscard]] std::vector<FlowEntry>& entries() { return entries_; }
  void clear() { entries_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<FlowEntry> entries_;  // insertion order
};

/// Exact-match cache keyed by full packet header. FIFO-evicting, like the
/// bounded kernel flow cache in OVS.
class MicroflowCache {
 public:
  explicit MicroflowCache(std::size_t capacity = 200000) : capacity_(capacity) {}

  /// Cache the forwarding decision for this exact header. The entry
  /// remembers which wildcard rule produced it so stats can be attributed.
  void insert(const of::PacketHeader& key, FlowId source_rule,
              const of::ActionList& actions, SimTime now);

  struct Hit {
    FlowId source_rule;
    const of::ActionList* actions;
  };
  std::optional<Hit> lookup(const of::PacketHeader& key, SimTime now);

  /// Drop every microflow derived from the given wildcard rule (rule
  /// deletion/modification must invalidate its microflows).
  void invalidate_rule(FlowId source_rule);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  void clear();

 private:
  struct Entry {
    FlowId source_rule;
    of::ActionList actions;
    SimTime last_use;
  };
  std::size_t capacity_;
  std::unordered_map<of::PacketHeader, Entry, of::PacketHeaderHash> map_;
  std::deque<of::PacketHeader> fifo_;
};

}  // namespace tango::tables
