// Lazy eviction heap over LexCachePolicy keys: O(log n) victim selection
// with semantics identical to the O(n) LexCachePolicy::victim_index scan.
//
// Records are (snapshot of the policy's attribute values, flow id). Every
// table mutation that could change an entry's rank pushes a *fresh* record;
// stale records (entry gone, or its live attribute values no longer equal
// the snapshot) are discarded lazily when they surface at the top. The
// invariant is that every resident entry always has at least one valid
// record, so the first valid record found at the top is the true victim.
//
// Snapshots store the same doubles attribute_value() feeds prefers(), and
// the record comparator replays prefers() exactly — key by key, with the
// final lower-id-stays tie-break — so victim() agrees with victim_index()
// on every input, ties and serial attributes included (the differential
// property suite in tests/test_tables.cpp asserts this).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <unordered_set>
#include <vector>

#include "tables/cache_policy.h"
#include "tables/flow_entry.h"

namespace tango::tables {

class EvictionHeap {
 public:
  /// Maximum lexicographic depth (distinct attributes in Attribute).
  static constexpr std::size_t kMaxKeys = 4;

  EvictionHeap() = default;

  /// Attach a policy (non-owning; nullptr detaches). Clears the heap; the
  /// owner re-pushes its resident entries.
  void set_policy(const LexCachePolicy* policy);
  [[nodiscard]] const LexCachePolicy* policy() const { return policy_; }

  /// True when some policy key ranks by an attribute record_hit() mutates
  /// (use time, traffic count). When false, hits cannot change any entry's
  /// rank, so per-hit re-pushes are pointless: the existing records stay
  /// fresh forever and duplicate pushes would only grow the heap.
  [[nodiscard]] bool rank_depends_on_hits() const { return hit_sensitive_; }

  /// Record the entry's current rank. Call on insert and after any
  /// attribute mutation (replace, record_hit). No-op when detached.
  void push(const FlowEntry& e);

  void clear() { heap_.clear(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// The eviction victim among live entries, or nullopt when none remain.
  /// `resolve(id)` returns the live entry or nullptr if it left the table.
  /// Stale records are popped; the returned victim's record stays valid at
  /// the top, so repeated calls are cheap.
  template <typename Resolve>
  std::optional<FlowId> victim(Resolve&& resolve) {
    while (!heap_.empty()) {
      const Record& top = heap_.front();
      const FlowEntry* live = resolve(top.id);
      if (live != nullptr && fresh(top, *live)) return top.id;
      pop_top();
    }
    return std::nullopt;
  }

  /// Drop stale records when they dominate the heap (amortized O(1) per
  /// mutation). `resolve` as in victim().
  template <typename Resolve>
  void maybe_compact(std::size_t resident, Resolve&& resolve) {
    if (heap_.size() <= 2 * resident + 64) return;
    // Keep one fresh record per live id. Fresh duplicates are bit-identical
    // (both equal the live attribute values), so dropping all but the first
    // cannot change the victim — but keeping them would let the heap stay
    // above the compaction threshold forever.
    std::vector<Record> kept;
    kept.reserve(resident);
    std::unordered_set<FlowId> seen;
    seen.reserve(resident);
    for (const auto& r : heap_) {
      const FlowEntry* live = resolve(r.id);
      if (live != nullptr && fresh(r, *live) && seen.insert(r.id).second) {
        kept.push_back(r);
      }
    }
    heap_ = std::move(kept);
    rebuild();
  }

 private:
  struct Record {
    std::array<double, kMaxKeys> key{};
    FlowId id = 0;
  };

  /// prefers() over snapshots: true when `a` outranks `b` (b evicted
  /// first). The heap is a max-heap under this order, so the top is the
  /// entry everything else outranks — the victim.
  [[nodiscard]] bool record_prefers(const Record& a, const Record& b) const;
  [[nodiscard]] bool fresh(const Record& r, const FlowEntry& live) const;
  [[nodiscard]] Record snapshot(const FlowEntry& e) const;
  void pop_top();
  void rebuild();

  const LexCachePolicy* policy_ = nullptr;
  bool hit_sensitive_ = false;
  std::vector<Record> heap_;
};

}  // namespace tango::tables
