#include "switchsim/misbehavior.h"

namespace tango::switchsim {

std::string to_string(MisbehaviorKind kind) {
  switch (kind) {
    case MisbehaviorKind::kSilentInstallDrop: return "silent_install_drop";
    case MisbehaviorKind::kStaleFlowStats: return "stale_flow_stats";
    case MisbehaviorKind::kSpuriousFlowRemoved: return "spurious_flow_removed";
    case MisbehaviorKind::kPriorityInversion: return "priority_inversion";
    case MisbehaviorKind::kLatencyDrift: return "latency_drift";
    case MisbehaviorKind::kCapacityShrink: return "capacity_shrink";
  }
  return "?";
}

}  // namespace tango::switchsim
