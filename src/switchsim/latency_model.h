// Latency models calibrated against the paper's Section 3 measurements.
//
// Control-plane cost of a flow_mod =
//     base(op, placement) + shifts * per_shift + message overhead,
// where `shifts` counts TCAM entries physically moved (the mechanism behind
// the ascending-vs-descending priority asymmetry of Fig 3(c)) and the
// message overhead is discounted for runs of same-type commands (vendor
// agents batch same-type ops; this is what makes op-type grouping pay off
// even on OVS, Fig 12).
//
// Data-plane delay is a per-level constant plus multiplicative jitter
// (Fig 2's fast/slow/control tiers).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "openflow/constants.h"

namespace tango::switchsim {

struct OpCostModel {
  /// Add at a fresh (strictly highest) priority position — pure append.
  SimDuration add_base = millis(0.7);
  /// Add appended after entries of equal priority (cheapest: no priority
  /// bookkeeping at all).
  SimDuration add_same_priority = millis(0.4);
  /// Add that lands in a software table instead of TCAM.
  SimDuration add_software = millis(0.25);
  SimDuration mod_base = millis(3.0);
  SimDuration del_base = millis(2.0);
  /// Cost of physically moving one TCAM entry.
  SimDuration per_shift = micros(12.0);
  /// Per-message channel/agent overhead...
  SimDuration msg_overhead = micros(60.0);
  /// ...multiplied by this factor when the previous command had the same
  /// type (same-type batching discount).
  double batch_factor = 0.35;
  /// Multiplicative gaussian jitter (stddev as a fraction of the mean).
  double jitter_frac = 0.03;
};

struct PathDelayModel {
  /// Data-plane forwarding delay per flow-table level (level 0 fastest).
  std::vector<SimDuration> level_delay;
  /// Delay when the packet must be punted to the controller.
  SimDuration control_path = millis(8.0);
  double jitter_frac = 0.05;
};

/// Which flow_mod operation a cost is charged for.
enum class OpKind { kAdd, kMod, kDel };

OpKind op_kind(of::FlowModCommand cmd);

/// Stateful cost calculator; remembers the previous op type for the
/// batching discount.
class LatencyModel {
 public:
  LatencyModel(OpCostModel costs, PathDelayModel paths, std::uint64_t jitter_seed);

  /// Cost of one flow_mod. `shifts` = TCAM entries moved; `same_priority` =
  /// append after equal-priority entries; `software` = landed in a software
  /// table.
  SimDuration flow_mod_cost(OpKind op, std::size_t shifts, bool same_priority,
                            bool software);

  /// Data-plane delay for a hit at `level` (jittered).
  SimDuration path_delay(std::size_t level);

  /// Data-plane delay for a controller punt (jittered).
  SimDuration control_delay();

  [[nodiscard]] const OpCostModel& costs() const { return costs_; }
  [[nodiscard]] const PathDelayModel& paths() const { return paths_; }
  [[nodiscard]] std::size_t levels() const { return paths_.level_delay.size(); }

  /// Forget the previous op type (e.g. after an idle period).
  void reset_batch_state() { has_prev_ = false; }

  /// Replace the cost model (simulates a firmware update / config change —
  /// used to exercise Tango's drift detection).
  void set_costs(const OpCostModel& costs) { costs_ = costs; }

 private:
  SimDuration jitter(SimDuration mean, double frac);

  OpCostModel costs_;
  PathDelayModel paths_;
  Rng rng_;
  bool has_prev_ = false;
  OpKind prev_op_ = OpKind::kAdd;
};

}  // namespace tango::switchsim
