#include "switchsim/latency_model.h"

#include <algorithm>
#include <cassert>

namespace tango::switchsim {

OpKind op_kind(of::FlowModCommand cmd) {
  switch (cmd) {
    case of::FlowModCommand::kAdd:
      return OpKind::kAdd;
    case of::FlowModCommand::kModify:
    case of::FlowModCommand::kModifyStrict:
      return OpKind::kMod;
    case of::FlowModCommand::kDelete:
    case of::FlowModCommand::kDeleteStrict:
      return OpKind::kDel;
  }
  return OpKind::kAdd;
}

LatencyModel::LatencyModel(OpCostModel costs, PathDelayModel paths,
                           std::uint64_t jitter_seed)
    : costs_(costs), paths_(std::move(paths)), rng_(jitter_seed) {}

SimDuration LatencyModel::flow_mod_cost(OpKind op, std::size_t shifts,
                                        bool same_priority, bool software) {
  SimDuration base{};
  switch (op) {
    case OpKind::kAdd:
      if (software) {
        base = costs_.add_software;
      } else if (same_priority) {
        base = costs_.add_same_priority;
      } else {
        base = costs_.add_base;
      }
      break;
    case OpKind::kMod:
      base = costs_.mod_base;
      break;
    case OpKind::kDel:
      base = costs_.del_base;
      break;
  }
  base += costs_.per_shift * static_cast<std::int64_t>(shifts);

  const bool batched = has_prev_ && prev_op_ == op;
  const double overhead_scale = batched ? costs_.batch_factor : 1.0;
  base += SimDuration{static_cast<std::int64_t>(
      static_cast<double>(costs_.msg_overhead.ns()) * overhead_scale)};
  has_prev_ = true;
  prev_op_ = op;

  return jitter(base, costs_.jitter_frac);
}

SimDuration LatencyModel::path_delay(std::size_t level) {
  assert(level < paths_.level_delay.size());
  return jitter(paths_.level_delay[level], paths_.jitter_frac);
}

SimDuration LatencyModel::control_delay() {
  return jitter(paths_.control_path, paths_.jitter_frac);
}

SimDuration LatencyModel::jitter(SimDuration mean, double frac) {
  if (frac <= 0) return mean;
  const double factor = std::max(0.2, rng_.normal(1.0, frac));
  return SimDuration{static_cast<std::int64_t>(
      static_cast<double>(mean.ns()) * factor)};
}

}  // namespace tango::switchsim
