#include "switchsim/switch_model.h"

#include <algorithm>
#include <cassert>
#include <iterator>
#include <utility>

#include "openflow/epoch.h"

namespace tango::switchsim {

std::string to_string(Architecture arch) {
  switch (arch) {
    case Architecture::kOvsMicroflow: return "ovs-microflow";
    case Architecture::kFifoTwoLevel: return "fifo-two-level";
    case Architecture::kTcamOnly: return "tcam-only";
    case Architecture::kPolicyCache: return "policy-cache";
  }
  return "?";
}

SimulatedSwitch::SimulatedSwitch(SwitchId id, SwitchProfile profile,
                                 std::uint64_t seed)
    : id_(id),
      profile_(std::move(profile)),
      latency_(profile_.costs, profile_.paths, seed),
      software_(0),
      microflow_(profile_.microflow_capacity) {
  for (const auto& cfg : profile_.cache_levels) levels_.emplace_back(cfg);
  if (profile_.arch == Architecture::kPolicyCache) {
    // Levels keep a lazy eviction heap synced to the profile's policy so
    // victim queries are O(log n). profile_ never moves (switches live
    // behind unique_ptr / on the stack), so the pointer stays valid.
    for (auto& level : levels_) level.set_eviction_policy(&profile_.policy);
  }
  assert(profile_.paths.level_delay.size() >=
         levels_.size() + (profile_.software_backing ||
                                   profile_.arch == Architecture::kOvsMicroflow
                               ? 1
                               : 0));
  if (profile_.install_default_route) install_default_route();
}

void SimulatedSwitch::install_default_route() {
  tables::FlowEntry def;
  def.id = next_flow_id_++;
  def.match = of::Match::any();
  def.priority = 0;
  def.actions = of::output_to(of::kPortController);
  if (!levels_.empty()) {
    levels_[0].insert(std::move(def));
  } else {
    software_.insert(std::move(def));
  }
}

void SimulatedSwitch::reset() {
  for (auto& level : levels_) level.clear();
  software_.clear();
  microflow_.clear();
  lookup_count_ = 0;
  matched_count_ = 0;
  latency_.reset_batch_state();
  if (profile_.install_default_route) install_default_route();
  // A previously fenced switch loses its epoch memory with its tables: it
  // must refuse every fenced flow_mod (stale pre-reboot frames included)
  // until the acting primary re-claims it. Never-fenced switches keep the
  // legacy behaviour — reboot changes nothing for them.
  if (controller_epoch_ != 0) {
    controller_epoch_ = 0;
    epoch_synced_ = false;
  }
}

SimulatedSwitch::EpochClaim SimulatedSwitch::claim_epoch(std::uint32_t epoch) {
  if (epoch != 0 && epoch >= controller_epoch_) {
    controller_epoch_ = epoch;
    epoch_synced_ = true;
    return {true, controller_epoch_};
  }
  return {false, controller_epoch_};
}

FlowModOutcome SimulatedSwitch::reject(const std::string& reason,
                                       of::FlowModFailedCode code) {
  FlowModOutcome out;
  out.accepted = false;
  out.processing_time =
      latency_.flow_mod_cost(OpKind::kAdd, 0, /*same_priority=*/false,
                             /*software=*/false);
  of::ErrorMsg err;
  err.type = of::ErrorType::kFlowModFailed;
  err.code = static_cast<std::uint16_t>(code);
  err.data.assign(reason.begin(), reason.end());
  out.error = std::move(err);
  return out;
}

FlowModOutcome SimulatedSwitch::apply_flow_mod(const of::FlowMod& fm, SimTime now) {
  last_now_ = now;
  sweep_timeouts(now);
  // Epoch fence: fenced flow_mods (cookie top byte != 0) are checked
  // against the highest epoch that has claimed this switch. Newer epochs
  // are adopted on first contact; stale epochs and post-reboot frames
  // (before a re-claim) are refused with EPERM. Unfenced flow_mods — all
  // pre-HA traffic, probe rules, reconciler deletes — skip the fence.
  if (const std::uint32_t fence = of::epoch_of_cookie(fm.cookie); fence != 0) {
    if (!epoch_synced_) {
      ++stale_epoch_rejections_;
      return reject("fenced flow_mod before post-reboot epoch re-sync",
                    of::FlowModFailedCode::kEperm);
    }
    if (fence < controller_epoch_) {
      ++stale_epoch_rejections_;
      return reject("stale controller epoch", of::FlowModFailedCode::kEperm);
    }
    if (fence > controller_epoch_) controller_epoch_ = fence;
    // Tripwire for the chaos "no stale mutation applied" oracle: reaching
    // the mutation dispatch with a stale fence means the guard regressed.
    if (fence < controller_epoch_ || !epoch_synced_) ++stale_epoch_applied_;
  }
  switch (fm.command) {
    case of::FlowModCommand::kAdd: {
      tables::FlowEntry entry;
      entry.id = next_flow_id_++;
      entry.match = fm.match;
      entry.priority = fm.priority;
      entry.cookie = fm.cookie;
      entry.actions = fm.actions;
      entry.idle_timeout = fm.idle_timeout;
      entry.hard_timeout = fm.hard_timeout;
      entry.send_flow_removed = (fm.flags & 1) != 0;
      entry.attrs.insert_time = now;
      entry.attrs.last_use_time = now;
      return do_add(std::move(entry), now);
    }
    case of::FlowModCommand::kModify:
      return do_modify(fm, now, /*strict=*/false);
    case of::FlowModCommand::kModifyStrict:
      return do_modify(fm, now, /*strict=*/true);
    case of::FlowModCommand::kDelete:
      return do_delete(fm, now, /*strict=*/false);
    case of::FlowModCommand::kDeleteStrict:
      return do_delete(fm, now, /*strict=*/true);
  }
  return reject("bad command", of::FlowModFailedCode::kBadCommand);
}

tables::FlowEntry* SimulatedSwitch::find_strict_anywhere(
    const of::Match& match, std::uint16_t priority, std::size_t* level_out) {
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (auto* e = levels_[i].find_strict(match, priority)) {
      if (level_out != nullptr) *level_out = i;
      return e;
    }
  }
  if (auto* e = software_.find_strict(match, priority)) {
    if (level_out != nullptr) *level_out = levels_.size();
    return e;
  }
  return nullptr;
}

FlowModOutcome SimulatedSwitch::do_add(tables::FlowEntry entry, SimTime now) {
  (void)now;
  if (profile_.max_total_rules != 0 && total_rules() >= profile_.max_total_rules) {
    return reject("switch rule limit", of::FlowModFailedCode::kAllTablesFull);
  }

  if (mis_ != nullptr) {
    if (mis_->silent_drop_budget > 0) {
      // The lie: acknowledge success, charge the usual time, install nothing.
      --mis_->silent_drop_budget;
      ++mis_->stats.silent_drops;
      FlowModOutcome out;
      out.processing_time = latency_.flow_mod_cost(
          OpKind::kAdd, 0, /*same_priority=*/false, /*software=*/false);
      return out;
    }
    if (mis_->inversion_budget > 0) {
      --mis_->inversion_budget;
      ++mis_->stats.priority_inversions;
      entry.priority = entry.priority >= 0x200
                           ? static_cast<std::uint16_t>(entry.priority - 0x200)
                           : static_cast<std::uint16_t>(entry.priority + 0x200);
    }
  }

  // OpenFlow 1.0: an ADD with an identical match+priority replaces the
  // existing entry in place (counters reset) — no physical movement.
  std::size_t existing_level = 0;
  if (auto* existing = find_strict_anywhere(entry.match, entry.priority,
                                            &existing_level)) {
    const FlowId id = existing->id;
    entry.id = id;
    // replace() keeps position/shift state and re-ranks the entry in the
    // level's eviction heap (the counters just reset).
    if (existing_level < levels_.size()) {
      levels_[existing_level].replace(id, std::move(entry));
    } else {
      software_.replace(id, std::move(entry));
    }
    microflow_.invalidate_rule(id);
    FlowModOutcome out;
    out.processing_time = latency_.flow_mod_cost(
        OpKind::kAdd, 0, /*same_priority=*/true,
        /*software=*/existing_level >= levels_.size());
    return out;
  }

  FlowModOutcome out;
  std::size_t shifts = 0;
  bool landed_software = false;
  bool same_priority = false;

  switch (profile_.arch) {
    case Architecture::kOvsMicroflow: {
      software_.insert(std::move(entry));
      landed_software = true;
      break;
    }
    case Architecture::kTcamOnly: {
      auto& tcam = levels_[0];
      same_priority = !tcam.entries().empty() &&
                      tcam.entries().back().priority == entry.priority;
      auto res = tcam.insert(std::move(entry));
      if (!res.accepted) {
        return reject(res.reject_reason, of::FlowModFailedCode::kAllTablesFull);
      }
      shifts = res.shifts;
      break;
    }
    case Architecture::kFifoTwoLevel: {
      auto& tcam = levels_[0];
      if (tcam.can_fit(entry.match)) {
        same_priority = !tcam.entries().empty() &&
                        tcam.entries().back().priority == entry.priority;
        auto res = tcam.insert(std::move(entry));
        assert(res.accepted);
        shifts = res.shifts;
      } else {
        software_.insert(std::move(entry));
        landed_software = true;
      }
      break;
    }
    case Architecture::kPolicyCache: {
      if (!cascade_insert(std::move(entry), &shifts, &landed_software)) {
        return reject("all tables full", of::FlowModFailedCode::kAllTablesFull);
      }
      break;
    }
  }

  out.shifts = shifts;
  out.processing_time =
      latency_.flow_mod_cost(OpKind::kAdd, shifts, same_priority, landed_software);
  return out;
}

bool SimulatedSwitch::cascade_insert(tables::FlowEntry entry, std::size_t* shifts,
                                     bool* landed_software) {
  if (!profile_.software_backing) {
    // Without a backing store an eviction would silently drop an installed
    // rule (an OpenFlow semantics violation), so a full cache rejects.
    for (auto& level : levels_) {
      if (level.can_fit(entry.match)) {
        auto res = level.insert(std::move(entry));
        assert(res.accepted);
        *shifts += res.shifts;
        return true;
      }
    }
    return false;
  }
  tables::FlowEntry pending = std::move(entry);
  for (auto& level : levels_) {
    if (level.can_fit(pending.match)) {
      auto res = level.insert(std::move(pending));
      assert(res.accepted);
      *shifts += res.shifts;
      return true;
    }
    // Level is full: the policy decides whether the newcomer displaces the
    // level's lowest-ordered entry (which then cascades down) or sinks.
    const auto victim_id = level.victim_id();
    if (!victim_id) {
      continue;  // level is empty: entry shape doesn't fit it at all
    }
    const tables::FlowEntry& victim_ref = *level.find_by_id(*victim_id);
    if (profile_.policy.prefers(pending, victim_ref)) {
      auto victim = level.take(*victim_id, shifts);
      assert(victim.has_value());
      auto res = level.insert(std::move(pending));
      assert(res.accepted);
      *shifts += res.shifts;
      pending = std::move(*victim);
    }
  }
  if (profile_.software_backing) {
    software_.insert(std::move(pending));
    *landed_software = true;
    return true;
  }
  return false;
}

FlowModOutcome SimulatedSwitch::do_modify(const of::FlowMod& fm, SimTime now,
                                          bool strict) {
  std::size_t updated = 0;
  auto touch = [&](tables::FlowEntry& e) {
    e.actions = fm.actions;
    e.cookie = fm.cookie;
    microflow_.invalidate_rule(e.id);
    ++updated;
  };

  if (strict) {
    if (auto* e = find_strict_anywhere(fm.match, fm.priority, nullptr)) touch(*e);
  } else {
    for (auto& level : levels_) level.for_each_matching(fm.match, touch);
    software_.for_each_matching(fm.match, touch);
  }

  if (updated == 0) {
    // Per OpenFlow 1.0, MODIFY with no matching entry behaves like ADD.
    tables::FlowEntry entry;
    entry.id = next_flow_id_++;
    entry.match = fm.match;
    entry.priority = fm.priority;
    entry.cookie = fm.cookie;
    entry.actions = fm.actions;
    entry.attrs.insert_time = now;
    entry.attrs.last_use_time = now;
    return do_add(std::move(entry), now);
  }

  FlowModOutcome out;
  out.processing_time = latency_.flow_mod_cost(OpKind::kMod, 0, false, false);
  return out;
}

FlowModOutcome SimulatedSwitch::do_delete(const of::FlowMod& fm, SimTime now,
                                          bool strict) {
  (void)now;
  std::size_t shifts = 0;
  std::vector<tables::FlowEntry> removed;

  if (strict) {
    std::size_t level = 0;
    if (auto* e = find_strict_anywhere(fm.match, fm.priority, &level)) {
      const FlowId id = e->id;
      if (level < levels_.size()) {
        auto taken = levels_[level].take(id, &shifts);
        if (taken) removed.push_back(std::move(*taken));
      } else if (auto taken = software_.erase(id)) {
        removed.push_back(std::move(*taken));
      }
    }
  } else {
    for (auto& level : levels_) {
      std::size_t level_shifts = 0;
      auto taken = level.erase_matching(fm.match, &level_shifts);
      shifts += level_shifts;
      for (auto& e : taken) removed.push_back(std::move(e));
    }
    auto taken = software_.erase_matching(fm.match);
    for (auto& e : taken) removed.push_back(std::move(e));
  }

  for (const auto& e : removed) microflow_.invalidate_rule(e.id);
  rebalance();

  FlowModOutcome out;
  out.shifts = shifts;
  out.processing_time = latency_.flow_mod_cost(OpKind::kDel, shifts, false, false);
  return out;
}

void SimulatedSwitch::rebalance() {
  if (profile_.arch == Architecture::kFifoTwoLevel) {
    // Oldest software entry is promoted whenever the TCAM has room (§3).
    auto& tcam = levels_[0];
    while (software_.size() > 0) {
      // Peek the oldest; stop if it cannot fit.
      auto oldest = software_.pop_oldest();
      if (!oldest) break;
      if (!tcam.can_fit(oldest->match)) {
        software_.insert(std::move(*oldest));  // put it back
        break;
      }
      tcam.insert(std::move(*oldest));
    }
    return;
  }
  if (profile_.arch != Architecture::kPolicyCache) return;

  // Pull the policy-best entries upward into freed slots, deepest first.
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    auto& upper = levels_[i];
    auto candidates = [&]() -> std::vector<const tables::FlowEntry*> {
      if (i + 1 < levels_.size()) return level_entries(i + 1);
      std::vector<const tables::FlowEntry*> out;
      out.reserve(software_.entries().size());
      for (const auto& e : software_.entries()) out.push_back(&e);
      return out;
    };
    for (auto pool = candidates(); !pool.empty(); pool = candidates()) {
      // Best = the entry the policy would evict last.
      const tables::FlowEntry* best = pool[0];
      for (const auto* e : pool) {
        if (profile_.policy.prefers(*e, *best)) best = e;
      }
      if (!upper.can_fit(best->match)) break;
      std::optional<tables::FlowEntry> moved;
      if (i + 1 < levels_.size()) {
        moved = levels_[i + 1].take(best->id);
      } else {
        moved = software_.erase(best->id);
      }
      if (!moved) break;
      upper.insert(std::move(*moved));
    }
  }
}

void SimulatedSwitch::set_misbehavior(MisbehaviorProfile profile) {
  MisbehaviorStats kept{};
  if (mis_ != nullptr) kept = mis_->stats;
  mis_ = std::make_unique<Misbehavior>();
  mis_->stats = kept;
  mis_->events = std::move(profile.events);
  std::stable_sort(mis_->events.begin(), mis_->events.end(),
                   [](const MisbehaviorEvent& a, const MisbehaviorEvent& b) {
                     return a.at < b.at;
                   });
}

void SimulatedSwitch::clear_misbehavior() {
  if (mis_ == nullptr) return;
  mis_->events.clear();
  mis_->next_event = 0;
  mis_->silent_drop_budget = 0;
  mis_->inversion_budget = 0;
  mis_->stale_budget = 0;
  mis_->stale_snapshot = {};
}

const MisbehaviorStats& SimulatedSwitch::misbehavior_stats() const {
  static const MisbehaviorStats kEmpty{};
  return mis_ != nullptr ? mis_->stats : kEmpty;
}

std::size_t SimulatedSwitch::misbehavior_pending() const {
  if (mis_ == nullptr) return 0;
  return (mis_->events.size() - mis_->next_event) + mis_->silent_drop_budget +
         mis_->inversion_budget + mis_->stale_budget;
}

std::size_t SimulatedSwitch::shrink_level(std::size_t level,
                                          std::size_t new_capacity_slots) {
  if (level >= levels_.size()) return 0;
  auto& tcam = levels_[level];
  std::size_t displaced = 0;
  while (tcam.slots_used() > new_capacity_slots && tcam.size() > 0) {
    // Evict from the highest physical position (the back of the array),
    // matching how a truncated TCAM loses its tail.
    const FlowId id = tcam.entries().back().id;
    auto taken = tcam.take(id);
    if (!taken) break;
    microflow_.invalidate_rule(id);
    if (profile_.software_backing) software_.insert(std::move(*taken));
    ++displaced;
  }
  tcam.set_capacity_slots(new_capacity_slots);
  if (level < profile_.cache_levels.size()) {
    profile_.cache_levels[level].capacity_slots = new_capacity_slots;
  }
  return displaced;
}

void SimulatedSwitch::fabricate_removals(std::size_t count) {
  // Lie about the highest-priority resident rules: claim they timed out
  // while leaving them installed.
  std::vector<const tables::FlowEntry*> pool;
  for (const auto& level : levels_) {
    for (const auto& e : level.entries()) pool.push_back(&e);
  }
  for (const auto& e : software_.entries()) pool.push_back(&e);
  std::sort(pool.begin(), pool.end(),
            [](const tables::FlowEntry* a, const tables::FlowEntry* b) {
              if (a->priority != b->priority) return a->priority > b->priority;
              return a->id < b->id;
            });
  if (pool.size() > count) pool.resize(count);
  for (const auto* e : pool) {
    of::FlowRemoved fr;
    fr.match = e->match;
    fr.cookie = e->cookie;
    fr.priority = e->priority;
    fr.reason = of::FlowRemovedReason::kIdleTimeout;
    const SimDuration age = last_now_ - e->attrs.insert_time;
    fr.duration_sec = static_cast<std::uint32_t>(age.ns() / 1000000000);
    fr.duration_nsec = static_cast<std::uint32_t>(age.ns() % 1000000000);
    fr.idle_timeout = e->idle_timeout;
    fr.packet_count = e->attrs.traffic_count;
    fr.byte_count = e->byte_count;
    pending_removals_.push_back(std::move(fr));
    ++mis_->stats.spurious_removals;
  }
}

void SimulatedSwitch::activate_misbehavior(SimTime now) {
  auto& m = *mis_;
  while (m.next_event < m.events.size() && m.events[m.next_event].at <= now) {
    const MisbehaviorEvent ev = m.events[m.next_event++];
    ++m.stats.events_activated;
    switch (ev.kind) {
      case MisbehaviorKind::kSilentInstallDrop:
        m.silent_drop_budget += ev.count;
        break;
      case MisbehaviorKind::kStaleFlowStats: {
        // Snapshot the honest table with the lie disarmed, then arm it.
        const std::size_t armed = m.stale_budget;
        m.stale_budget = 0;
        m.stale_snapshot = flow_stats(of::Match::any());
        m.stale_budget = armed + ev.count;
        break;
      }
      case MisbehaviorKind::kSpuriousFlowRemoved:
        fabricate_removals(ev.count);
        break;
      case MisbehaviorKind::kPriorityInversion:
        m.inversion_budget += ev.count;
        break;
      case MisbehaviorKind::kLatencyDrift: {
        OpCostModel costs = latency_.costs();
        const double scale = 1.0 + ev.magnitude;
        auto scaled = [scale](SimDuration d) {
          return nanos(static_cast<std::int64_t>(
              static_cast<double>(d.ns()) * scale));
        };
        costs.add_base = scaled(costs.add_base);
        costs.add_same_priority = scaled(costs.add_same_priority);
        costs.add_software = scaled(costs.add_software);
        costs.mod_base = scaled(costs.mod_base);
        costs.del_base = scaled(costs.del_base);
        latency_.set_costs(costs);
        ++m.stats.latency_drifts;
        break;
      }
      case MisbehaviorKind::kCapacityShrink: {
        if (!levels_.empty()) {
          const auto target = static_cast<std::size_t>(
              static_cast<double>(levels_[0].slots_total()) * ev.magnitude);
          m.stats.entries_evicted += shrink_level(0, target);
        }
        ++m.stats.capacity_shrinks;
        break;
      }
    }
  }
}

void SimulatedSwitch::sweep_timeouts(SimTime now) {
  if (mis_ != nullptr) activate_misbehavior(now);
  // One table API for expiry everywhere (this used to be two hand-rolled
  // reverse-erase loops); take_expired() is O(1) when no resident entry
  // carries a timeout, which is the common case on the forwarding path.
  std::vector<tables::FlowEntry> expired;
  for (auto& level : levels_) {
    auto taken = level.take_expired(now);
    std::move(taken.begin(), taken.end(), std::back_inserter(expired));
  }
  {
    auto taken = software_.take_expired(now);
    std::move(taken.begin(), taken.end(), std::back_inserter(expired));
  }
  if (expired.empty()) return;

  for (const auto& e : expired) {
    microflow_.invalidate_rule(e.id);
    if (!e.send_flow_removed) continue;
    of::FlowRemoved fr;
    fr.match = e.match;
    fr.cookie = e.cookie;
    fr.priority = e.priority;
    fr.reason = e.expiry_reason(now);
    const SimDuration age = now - e.attrs.insert_time;
    fr.duration_sec = static_cast<std::uint32_t>(age.ns() / 1000000000);
    fr.duration_nsec = static_cast<std::uint32_t>(age.ns() % 1000000000);
    fr.idle_timeout = e.idle_timeout;
    fr.packet_count = e.attrs.traffic_count;
    fr.byte_count = e.byte_count;
    pending_removals_.push_back(std::move(fr));
  }
  rebalance();
}

std::vector<of::FlowRemoved> SimulatedSwitch::drain_removals() {
  return std::exchange(pending_removals_, {});
}

ForwardOutcome SimulatedSwitch::forward(const of::Packet& pkt, SimTime now) {
  last_now_ = now;
  sweep_timeouts(now);
  ++lookup_count_;
  ForwardOutcome out;

  // Ingress port accounting; downed ports drop on the floor.
  {
    auto& ingress = port(pkt.header.in_port);
    if (!port_forwarding(pkt.header.in_port)) {
      ++ingress.counters.rx_dropped;
      out.kind = ForwardOutcome::Kind::kDropped;
      return out;
    }
    ingress.counters.rx_packets += 1;
    ingress.counters.rx_bytes += pkt.total_len();
  }

  // Egress accounting, applied to every forwarded outcome on return.
  auto account_tx = [&]() {
    if (out.kind != ForwardOutcome::Kind::kForwarded) return;
    auto& egress = port(out.out_port);
    if (!port_forwarding(out.out_port)) {
      ++egress.counters.tx_dropped;
      out.kind = ForwardOutcome::Kind::kDropped;
      return;
    }
    egress.counters.tx_packets += 1;
    egress.counters.tx_bytes += pkt.total_len();
  };

  auto hit_at = [&](tables::FlowEntry& e, std::size_t level) {
    ++matched_count_;
    e.record_hit(now, pkt.total_len());
    // record_hit changes policy attributes, so the level's eviction heap
    // needs a fresh rank record (no-op when no policy is attached).
    if (level < levels_.size()) levels_[level].note_attrs_changed(e.id);
    out.kind = ForwardOutcome::Kind::kForwarded;
    out.level = level;
    out.delay = latency_.path_delay(level);
    out.out_port = of::output_port(e.actions);
    if (out.out_port == of::kPortController) {
      out.kind = ForwardOutcome::Kind::kToController;
      out.delay = latency_.control_delay();
    }
  };

  if (profile_.arch == Architecture::kOvsMicroflow) {
    if (auto hit = microflow_.lookup(pkt.header, now)) {
      ++matched_count_;
      // Attribute the hit to the wildcard rule that spawned the microflow.
      if (auto* e = software_.find_by_id(hit->source_rule)) {
        e->record_hit(now, pkt.total_len());
      }
      out.kind = ForwardOutcome::Kind::kForwarded;
      out.level = 0;
      out.delay = latency_.path_delay(0);
      out.out_port = of::output_port(*hit->actions);
      account_tx();
      return out;
    }
    if (auto* e = software_.lookup(pkt.header)) {
      hit_at(*e, 1);
      if (out.kind == ForwardOutcome::Kind::kForwarded) {
        // Traffic-triggered 1-to-N mapping: cache the exact flow in kernel.
        microflow_.insert(pkt.header, e->id, e->actions, now);
      }
      account_tx();
      return out;
    }
    out.kind = ForwardOutcome::Kind::kToController;
    out.delay = latency_.control_delay();
    return out;
  }

  // The flow-table layers implement ONE logical OpenFlow table: the rule
  // that wins is the highest-priority match across every layer, and the
  // packet is served at the speed of the layer holding it. (A lower layer
  // can hold a higher-priority rule than a TCAM match — e.g. a wildcard
  // default route resident in TCAM must not shadow specific software
  // rules.)
  tables::FlowEntry* best = nullptr;
  std::size_t best_level = 0;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (auto* e = levels_[i].lookup(pkt.header)) {
      if (best == nullptr || e->priority > best->priority) {
        best = e;
        best_level = i;
      }
    }
  }
  if (profile_.software_backing) {
    if (auto* e = software_.lookup(pkt.header)) {
      if (best == nullptr || e->priority > best->priority) {
        best = e;
        best_level = levels_.size();
      }
    }
  }

  if (best == nullptr) {
    out.kind = ForwardOutcome::Kind::kToController;
    out.delay = latency_.control_delay();
    return out;
  }

  hit_at(*best, best_level);

  if (profile_.arch == Architecture::kPolicyCache && best_level > 0 &&
      out.kind == ForwardOutcome::Kind::kForwarded) {
    // Hit below the top: the (now-updated) entry may outrank the level
    // above's victim; if so they swap residences.
    const FlowId id = best->id;
    const std::size_t above = best_level - 1;
    auto take_hit = [&]() -> std::optional<tables::FlowEntry> {
      if (best_level < levels_.size()) return levels_[best_level].take(id);
      return software_.erase(id);
    };
    auto put_back_down = [&](tables::FlowEntry entry) {
      if (best_level < levels_.size()) {
        levels_[best_level].insert(std::move(entry));
      } else {
        software_.insert(std::move(entry));
      }
    };
    if (levels_[above].can_fit(best->match)) {
      auto moved = take_hit();
      levels_[above].insert(std::move(*moved));
    } else if (const auto vid = levels_[above].victim_id()) {
      const tables::FlowEntry& victim_ref = *levels_[above].find_by_id(*vid);
      if (profile_.policy.prefers(*best, victim_ref)) {
        auto victim = levels_[above].take(*vid);
        auto moved = take_hit();
        levels_[above].insert(std::move(*moved));
        put_back_down(std::move(*victim));
      }
    }
  }
  account_tx();
  return out;
}

of::FeaturesReply SimulatedSwitch::features() const {
  of::FeaturesReply reply;
  reply.datapath_id = id_;
  reply.n_buffers = 256;
  reply.n_tables = static_cast<std::uint8_t>(
      levels_.size() + (profile_.software_backing ||
                                profile_.arch == Architecture::kOvsMicroflow
                            ? 1
                            : 0));
  reply.capabilities = 0x1;  // FLOW_STATS
  reply.actions = 0xfff;
  for (std::size_t p = 1; p <= profile_.n_ports; ++p) {
    of::PhyPort port;
    port.port_no = static_cast<std::uint16_t>(p);
    port.hw_addr = {0x02, 0x00, 0x00, 0x00,
                    static_cast<std::uint8_t>(id_ & 0xff),
                    static_cast<std::uint8_t>(p)};
    port.name = "port" + std::to_string(p);
    reply.ports.push_back(std::move(port));
  }
  return reply;
}

of::TableStatsReply SimulatedSwitch::table_stats() const {
  of::TableStatsReply reply;
  std::uint8_t table_id = 0;
  for (const auto& level : levels_) {
    of::TableStatsEntry e;
    e.table_id = table_id++;
    e.name = "hw" + std::to_string(e.table_id);
    e.wildcards = of::kWildcardAll;
    // NOTE: deliberately approximate, per the paper's observation that
    // feature reports are unreliable — the real capacity depends on entry
    // shapes. We report raw slots.
    e.max_entries = static_cast<std::uint32_t>(level.slots_total());
    e.active_count = static_cast<std::uint32_t>(level.size());
    e.lookup_count = lookup_count_;
    e.matched_count = matched_count_;
    reply.entries.push_back(std::move(e));
  }
  if (profile_.software_backing || profile_.arch == Architecture::kOvsMicroflow) {
    of::TableStatsEntry e;
    e.table_id = table_id++;
    e.name = "software";
    e.wildcards = of::kWildcardAll;
    e.max_entries = 1u << 20;
    e.active_count = static_cast<std::uint32_t>(software_.size());
    e.lookup_count = lookup_count_;
    e.matched_count = matched_count_;
    reply.entries.push_back(std::move(e));
  }
  return reply;
}

of::FlowStatsReply SimulatedSwitch::flow_stats(const of::Match& filter) const {
  if (mis_ != nullptr && mis_->stale_budget > 0) {
    // Serve the filter over the activation-time snapshot instead of the
    // live table (the budget makes the lie bounded, so repair loops that
    // outlast it still converge).
    --mis_->stale_budget;
    ++mis_->stats.stale_stats_replies;
    of::FlowStatsReply stale;
    for (const auto& e : mis_->stale_snapshot.entries) {
      if (filter.subsumes(e.match)) stale.entries.push_back(e);
    }
    return stale;
  }
  of::FlowStatsReply reply;
  auto add_entry = [&](const tables::FlowEntry& e, std::uint8_t table_id) {
    if (!filter.subsumes(e.match)) return;
    of::FlowStatsEntry s;
    s.table_id = table_id;
    s.match = e.match;
    const SimDuration age = last_now_ - e.attrs.insert_time;
    s.duration_sec = static_cast<std::uint32_t>(age.ns() / 1000000000);
    s.duration_nsec = static_cast<std::uint32_t>(age.ns() % 1000000000);
    s.priority = e.priority;
    s.idle_timeout = e.idle_timeout;
    s.hard_timeout = e.hard_timeout;
    s.cookie = e.cookie;
    s.packet_count = e.attrs.traffic_count;
    s.byte_count = e.byte_count;
    s.actions = e.actions;
    reply.entries.push_back(std::move(s));
  };
  std::uint8_t table_id = 0;
  for (const auto& level : levels_) {
    for (const auto& e : level.entries()) add_entry(e, table_id);
    ++table_id;
  }
  for (const auto& e : software_.entries()) add_entry(e, table_id);
  return reply;
}

of::AggregateStatsReply SimulatedSwitch::aggregate_stats(
    const of::Match& filter) const {
  of::AggregateStatsReply reply;
  const auto stats = flow_stats(filter);
  for (const auto& e : stats.entries) {
    reply.packet_count += e.packet_count;
    reply.byte_count += e.byte_count;
    ++reply.flow_count;
  }
  return reply;
}

of::DescStatsReply SimulatedSwitch::description() const {
  of::DescStatsReply reply;
  reply.mfr_desc = profile_.vendor;
  reply.hw_desc = profile_.name;
  reply.sw_desc = "tango-switchsim " + to_string(profile_.arch);
  reply.serial_num = "sim-" + std::to_string(id_);
  reply.dp_desc = profile_.name + " (datapath " + std::to_string(id_) + ")";
  return reply;
}

SimulatedSwitch::PortState& SimulatedSwitch::port(std::uint16_t port_no) {
  auto [it, inserted] = ports_.try_emplace(port_no);
  if (inserted) it->second.counters.port_no = port_no;
  return it->second;
}

of::PhyPort SimulatedSwitch::phy_port(std::uint16_t port_no) const {
  of::PhyPort p;
  p.port_no = port_no;
  p.hw_addr = {0x02, 0x00, 0x00, 0x00, static_cast<std::uint8_t>(id_ & 0xff),
               static_cast<std::uint8_t>(port_no)};
  p.name = "port" + std::to_string(port_no);
  const auto it = ports_.find(port_no);
  if (it != ports_.end()) {
    p.config = it->second.config;
    p.state = it->second.state;
  }
  return p;
}

of::PortStatsReply SimulatedSwitch::port_stats(std::uint16_t port_no) const {
  of::PortStatsReply reply;
  if (port_no != of::kPortNone) {
    const auto it = ports_.find(port_no);
    of::PortStatsEntry e;
    e.port_no = port_no;
    if (it != ports_.end()) e = it->second.counters;
    reply.entries.push_back(e);
    return reply;
  }
  for (std::uint16_t p = 1; p <= profile_.n_ports; ++p) {
    const auto it = ports_.find(p);
    of::PortStatsEntry e;
    e.port_no = p;
    if (it != ports_.end()) e = it->second.counters;
    reply.entries.push_back(e);
  }
  return reply;
}

of::GetConfigReply SimulatedSwitch::config() const {
  of::GetConfigReply reply;
  reply.flags = config_flags_;
  reply.miss_send_len = miss_send_len_;
  return reply;
}

void SimulatedSwitch::set_config(const of::SetConfig& cfg) {
  config_flags_ = cfg.flags;
  miss_send_len_ = cfg.miss_send_len;
}

void SimulatedSwitch::apply_port_mod(const of::PortMod& pm) {
  auto& state = port(pm.port_no);
  state.config = (state.config & ~pm.mask) | (pm.config & pm.mask);
  of::PortStatus status;
  status.reason = of::PortReason::kModify;
  status.port = phy_port(pm.port_no);
  pending_port_status_.push_back(std::move(status));
}

void SimulatedSwitch::set_port_link(std::uint16_t port_no, bool up) {
  auto& state = port(port_no);
  const std::uint32_t before = state.state;
  if (up) {
    state.state &= ~of::kPortStateLinkDown;
  } else {
    state.state |= of::kPortStateLinkDown;
  }
  if (state.state == before) return;  // no transition: no notification
  of::PortStatus status;
  status.reason = of::PortReason::kModify;
  status.port = phy_port(port_no);
  pending_port_status_.push_back(std::move(status));
}

bool SimulatedSwitch::port_forwarding(std::uint16_t port_no) const {
  const auto it = ports_.find(port_no);
  if (it == ports_.end()) return true;
  return (it->second.state & of::kPortStateLinkDown) == 0 &&
         (it->second.config & of::kPortConfigDown) == 0;
}

std::vector<of::PortStatus> SimulatedSwitch::drain_port_status() {
  return std::exchange(pending_port_status_, {});
}

std::size_t SimulatedSwitch::total_rules() const {
  std::size_t n = software_.size();
  for (const auto& level : levels_) n += level.size();
  return n;
}

std::size_t SimulatedSwitch::level_size(std::size_t level) const {
  if (level < levels_.size()) return levels_[level].size();
  return software_.size();
}

std::vector<const tables::FlowEntry*> SimulatedSwitch::level_entries(
    std::size_t level) const {
  std::vector<const tables::FlowEntry*> out;
  if (level < levels_.size()) {
    out.reserve(levels_[level].size());
    for (const auto& e : levels_[level].entries()) out.push_back(&e);
  } else {
    out.reserve(software_.size());
    for (const auto& e : software_.entries()) out.push_back(&e);
  }
  return out;
}

bool SimulatedSwitch::resident_at_level(const of::Match& match,
                                        std::uint16_t priority,
                                        std::size_t level) const {
  auto entries = level_entries(level);
  for (const auto* e : entries) {
    if (e->priority == priority && e->match == match) return true;
  }
  return false;
}

std::size_t SimulatedSwitch::level_capacity(std::size_t level) const {
  if (level >= levels_.size()) return 0;
  const auto& cfg = levels_[level].config();
  switch (cfg.mode) {
    case tables::TcamMode::kSingleWide:
    case tables::TcamMode::kAdaptive:
      return cfg.capacity_slots;
    case tables::TcamMode::kDoubleWide:
      return cfg.capacity_slots / 2;
  }
  return cfg.capacity_slots;
}

}  // namespace tango::switchsim
