// Semantic switch misbehavior: faults in what a switch *does*, not in what
// the control channel *delivers*. Orthogonal to net::FaultInjector — the
// channel keeps delivering frames faithfully; the switch lies about (or
// drifts away from) the state the controller believes in.
//
// Six kinds, grouped in two families:
//
//  * lies — the switch acknowledges work it did not do, or reports state it
//    no longer holds. Count-limited: each scheduled event arms a budget of
//    `count` occurrences, consumed by subsequent operations.
//      - kSilentInstallDrop: flow_mod ADD returns success, table unchanged.
//      - kStaleFlowStats: FlowStats replies served from a snapshot taken at
//        event-activation time, not the live table.
//      - kSpuriousFlowRemoved: fabricated FLOW_REMOVED notices for rules
//        that are still resident.
//      - kPriorityInversion: an installed ADD lands with a mangled priority.
//  * drift — the switch's physical properties change ("firmware upgrade",
//    partial hardware failure). Persistent until re-inference observes them.
//      - kLatencyDrift: per-op costs scaled by (1 + magnitude).
//      - kCapacityShrink: level-0 fast table truncated to
//        floor(slots * magnitude) slots; displaced entries spill to the
//        software table when the profile has one, else they are lost.
//
// Everything is deterministic and RNG-free: events carry absolute virtual
// times and activate inside SimulatedSwitch::sweep_timeouts(), so a seeded
// schedule replays bit-identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace tango::switchsim {

enum class MisbehaviorKind {
  kSilentInstallDrop,
  kStaleFlowStats,
  kSpuriousFlowRemoved,
  kPriorityInversion,
  kLatencyDrift,
  kCapacityShrink,
};

std::string to_string(MisbehaviorKind kind);

struct MisbehaviorEvent {
  MisbehaviorKind kind = MisbehaviorKind::kSilentInstallDrop;
  /// Absolute virtual time at which the event activates.
  SimTime at{};
  /// For the lie kinds: how many occurrences this event arms.
  std::size_t count = 1;
  /// For the drift kinds: kLatencyDrift cost scale summand (costs *=
  /// 1 + magnitude); kCapacityShrink keep-fraction of level-0 slots.
  double magnitude = 0.0;
};

struct MisbehaviorProfile {
  std::vector<MisbehaviorEvent> events;
  [[nodiscard]] bool empty() const { return events.empty(); }
};

/// Ground-truth occurrence counters, for oracles and fingerprints.
struct MisbehaviorStats {
  std::uint64_t events_activated = 0;
  std::uint64_t silent_drops = 0;
  std::uint64_t stale_stats_replies = 0;
  std::uint64_t spurious_removals = 0;
  std::uint64_t priority_inversions = 0;
  std::uint64_t latency_drifts = 0;
  std::uint64_t capacity_shrinks = 0;
  std::uint64_t entries_evicted = 0;  ///< displaced by capacity shrinks
};

}  // namespace tango::switchsim
