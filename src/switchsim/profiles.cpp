#include "switchsim/profiles.h"

namespace tango::switchsim::profiles {

SwitchProfile ovs() {
  SwitchProfile p;
  p.name = "OVS";
  p.vendor = "open-vswitch";
  p.arch = Architecture::kOvsMicroflow;
  p.software_backing = true;  // the user-space table is the rule store
  p.paths.level_delay = {millis(3.0), millis(4.5)};  // kernel, user space
  p.paths.control_path = millis(4.65);
  p.paths.jitter_frac = 0.06;
  p.costs.add_base = micros(50);
  p.costs.add_same_priority = micros(50);
  p.costs.add_software = micros(50);
  p.costs.mod_base = micros(45);
  p.costs.del_base = micros(35);
  p.costs.per_shift = nanos(0);  // software tables: no physical ordering
  p.costs.msg_overhead = micros(40);
  p.costs.batch_factor = 0.15;
  p.costs.jitter_frac = 0.04;
  p.install_default_route = false;
  return p;
}

SwitchProfile switch1(tables::TcamMode mode) {
  SwitchProfile p;
  p.name = "HW Switch #1";
  p.vendor = "vendor1";
  p.arch = Architecture::kFifoTwoLevel;
  p.cache_levels = {tables::TcamConfig{4096, mode}};
  p.software_backing = true;  // 256 virtual tables in user space
  p.paths.level_delay = {micros(665), millis(3.7)};
  p.paths.control_path = millis(7.5);
  p.paths.jitter_frac = 0.05;
  p.costs.add_base = micros(700);
  p.costs.add_same_priority = micros(400);
  p.costs.add_software = micros(250);
  p.costs.mod_base = millis(3.0);
  p.costs.del_base = millis(2.0);
  p.costs.per_shift = micros(20);
  // Vendor agents commit same-type runs of commands as one hardware
  // transaction; switching op type flushes the pipeline. This is the
  // batching effect the Tango type-grouping patterns exploit (Fig 10's
  // TE gains).
  p.costs.msg_overhead = micros(400);
  p.costs.batch_factor = 0.15;
  p.costs.jitter_frac = 0.03;
  p.install_default_route = true;
  return p;
}

SwitchProfile switch2() {
  SwitchProfile p;
  p.name = "HW Switch #2";
  p.vendor = "vendor2";
  p.arch = Architecture::kTcamOnly;
  p.cache_levels = {tables::TcamConfig{5120, tables::TcamMode::kDoubleWide}};
  p.software_backing = false;
  p.paths.level_delay = {micros(400)};
  p.paths.control_path = millis(8.0);
  p.paths.jitter_frac = 0.05;
  p.costs.add_base = millis(1.0);
  p.costs.add_same_priority = micros(550);
  p.costs.add_software = micros(300);
  p.costs.mod_base = millis(2.5);
  p.costs.del_base = millis(1.8);
  p.costs.per_shift = micros(10);
  p.costs.msg_overhead = micros(500);
  p.costs.batch_factor = 0.15;
  p.costs.jitter_frac = 0.03;
  p.install_default_route = true;
  return p;
}

SwitchProfile switch3() {
  SwitchProfile p;
  p.name = "HW Switch #3";
  p.vendor = "vendor3";
  p.arch = Architecture::kTcamOnly;
  p.cache_levels = {tables::TcamConfig{767, tables::TcamMode::kAdaptive}};
  p.software_backing = false;
  p.paths.level_delay = {micros(500)};
  p.paths.control_path = millis(9.0);
  p.paths.jitter_frac = 0.05;
  // Slower control CPU than Vendor #1, and strongly order-sensitive: TCAM
  // management dominates, so shift costs dwarf the base cost (this is what
  // gives the Fig 10 LF scenario its ~70% headroom for priority sorting).
  p.costs.add_base = millis(2.2);
  p.costs.add_same_priority = millis(1.4);
  p.costs.add_software = millis(1.0);
  p.costs.mod_base = millis(3.5);
  p.costs.del_base = millis(3.0);
  p.costs.per_shift = micros(95);
  p.costs.msg_overhead = micros(800);
  p.costs.batch_factor = 0.15;
  p.costs.jitter_frac = 0.04;
  p.install_default_route = true;
  return p;
}

SwitchProfile switch2_multilevel() {
  SwitchProfile p;
  p.name = "HW Switch #2 (multilevel)";
  p.vendor = "vendor2";
  p.arch = Architecture::kPolicyCache;
  p.cache_levels = {tables::TcamConfig{750, tables::TcamMode::kSingleWide},
                    tables::TcamConfig{750, tables::TcamMode::kSingleWide}};
  p.software_backing = true;
  p.policy = tables::LexCachePolicy::lru();
  // Fig 5's three bands, in 1e-2 ms units roughly 20 / 60 / 140.
  p.paths.level_delay = {micros(200), micros(600), millis(1.4)};
  p.paths.control_path = millis(8.0);
  p.paths.jitter_frac = 0.07;
  p.costs = switch2().costs;
  p.install_default_route = false;
  return p;
}

SwitchProfile policy_cache(std::string name, std::vector<std::size_t> level_sizes,
                           tables::LexCachePolicy policy, bool software_backing) {
  SwitchProfile p;
  p.name = std::move(name);
  p.vendor = "synthetic";
  p.arch = Architecture::kPolicyCache;
  p.software_backing = software_backing;
  p.policy = std::move(policy);
  double delay_us = 200;
  for (std::size_t size : level_sizes) {
    p.cache_levels.push_back(
        tables::TcamConfig{size, tables::TcamMode::kSingleWide});
    p.paths.level_delay.push_back(micros(delay_us));
    delay_us *= 5;  // well-separated latency bands
  }
  if (software_backing) p.paths.level_delay.push_back(micros(delay_us));
  p.paths.control_path = millis(8.0) + micros(delay_us);
  p.paths.jitter_frac = 0.05;
  p.costs.add_base = micros(700);
  p.costs.add_same_priority = micros(400);
  p.costs.add_software = micros(250);
  p.costs.mod_base = millis(3.0);
  p.costs.del_base = millis(2.0);
  p.costs.per_shift = micros(12);
  p.costs.msg_overhead = micros(60);
  p.costs.batch_factor = 0.35;
  p.costs.jitter_frac = 0.03;
  p.install_default_route = false;
  return p;
}

std::vector<SwitchProfile> paper_fleet() {
  return {ovs(), switch1(), switch2(), switch3()};
}

}  // namespace tango::switchsim::profiles
