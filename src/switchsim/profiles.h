// Vendor profiles calibrated against the paper's Section 3 measurements.
//
// | profile   | tables                     | Table 1 sizes        | Fig 2 delays (fast/slow/ctrl) |
// |-----------|----------------------------|----------------------|-------------------------------|
// | ovs       | user space + kernel cache  | unbounded            | 3 / 4.5 / 4.65 ms             |
// | switch1   | TCAM + user space (FIFO)   | 4K L2|L3, 2K L2+L3   | 0.665 / 3.7 / 7.5 ms          |
// | switch2   | TCAM only (double-wide)    | 2560 any shape       | 0.4 / - / 8 ms                |
// | switch3   | TCAM only (adaptive)       | 767 L2|L3, 383 L2+L3 | 0.5 / - / 9 ms                |
//
// (Switch #3's paper value for L2+L3 is 369; an integral-slot adaptive TCAM
// of 767 slots yields 383 — the 4% gap is documented in EXPERIMENTS.md.)
//
// Control-plane cost constants are chosen so the Fig 3 shapes reproduce:
// same-priority < ascending << random << descending on hardware, flat on
// OVS, and modify ~6x cheaper than (shift-heavy) adds at n = 5000.
#pragma once

#include <cstddef>
#include <vector>

#include "switchsim/switch_model.h"

namespace tango::switchsim::profiles {

SwitchProfile ovs();

/// Vendor #1: TCAM backed by user-space virtual tables with FIFO promotion.
/// The TCAM mode is configurable exactly as Table 1 describes.
SwitchProfile switch1(tables::TcamMode mode = tables::TcamMode::kDoubleWide);

/// Vendor #2: TCAM-only, hardwired double-wide (2560 entries of any shape).
SwitchProfile switch2();

/// Vendor #3: TCAM-only, adaptive entry widths (slower control CPU).
SwitchProfile switch3();

/// The three-latency-band configuration behind Fig 5: two hardware banks
/// plus a software tier, managed by an LRU policy.
SwitchProfile switch2_multilevel();

/// Synthetic policy-cache switch for inference experiments: bounded levels
/// of the given entry capacities (fastest first) over an unbounded software
/// tier, managed by `policy`.
SwitchProfile policy_cache(std::string name, std::vector<std::size_t> level_sizes,
                           tables::LexCachePolicy policy,
                           bool software_backing = true);

/// All four paper switches, for fleet-style examples and benches.
std::vector<SwitchProfile> paper_fleet();

}  // namespace tango::switchsim::profiles
