// Behavioural model of an OpenFlow switch with vendor-diverse internals.
//
// Four architectures cover the diversity observed in the paper's Section 3:
//
//  * kOvsMicroflow — OVS: unbounded user-space wildcard table + exact-match
//    kernel cache populated by data traffic (1-to-N mapping). Three-tier
//    delay (Fig 2a), priority-independent installation (Fig 3c).
//  * kFifoTwoLevel — Switch #1: TCAM + user-space virtual tables where the
//    software table acts as a FIFO buffer feeding the TCAM: placement is
//    traffic-independent; the oldest software entry is promoted whenever a
//    TCAM slot frees (Fig 2b).
//  * kTcamOnly — Switch #2/#3: TCAM is the only table; inserts beyond
//    capacity are rejected with OFPET_FLOW_MOD_FAILED (Fig 2c).
//  * kPolicyCache — the general multi-level model of §5.1: bounded levels
//    ordered fastest-first, managed by a lexicographic cache policy that
//    evicts downward and promotes on data-plane hits. This is the target
//    the inference algorithms are tested against.
//
// The switch charges control-plane time per flow_mod via LatencyModel
// (including TCAM shift costs) and data-plane delay per lookup level.
#pragma once

#include <map>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "openflow/messages.h"
#include "openflow/packet.h"
#include "switchsim/latency_model.h"
#include "switchsim/misbehavior.h"
#include "tables/cache_policy.h"
#include "tables/software_table.h"
#include "tables/tcam.h"

namespace tango::switchsim {

enum class Architecture { kOvsMicroflow, kFifoTwoLevel, kTcamOnly, kPolicyCache };

std::string to_string(Architecture arch);

struct SwitchProfile {
  std::string name = "switch";
  std::string vendor = "unknown";
  Architecture arch = Architecture::kTcamOnly;
  /// Bounded cache levels, fastest first. Generic bounded levels use
  /// single-wide configs whose slot count equals the entry capacity.
  std::vector<tables::TcamConfig> cache_levels;
  /// Whether an unbounded software table backs the bounded levels.
  bool software_backing = false;
  /// Cache policy for kPolicyCache architectures.
  tables::LexCachePolicy policy = tables::LexCachePolicy::fifo();
  OpCostModel costs;
  PathDelayModel paths;
  /// Hard cap on total rules (0 = unbounded). Models virtual-table limits.
  std::size_t max_total_rules = 0;
  /// Install a lowest-priority default route on reset (the paper notes the
  /// hardware switches arrive with one preinstalled, hence 2047 usable
  /// TCAM entries out of 2048 in Fig 2b).
  bool install_default_route = false;
  std::size_t microflow_capacity = 1 << 18;
  std::size_t n_ports = 8;
};

struct ForwardOutcome {
  enum class Kind { kForwarded, kToController, kDropped };
  Kind kind = Kind::kDropped;
  /// Flow-table level that matched (see SwitchProfile::paths.level_delay
  /// for the per-level latency; only valid for kForwarded).
  std::size_t level = 0;
  SimDuration delay{};
  std::uint16_t out_port = of::kPortNone;
};

struct FlowModOutcome {
  bool accepted = true;
  SimDuration processing_time{};
  std::optional<of::ErrorMsg> error;
  /// Diagnostics for white-box tests: TCAM entries physically moved.
  std::size_t shifts = 0;
};

class SimulatedSwitch {
 public:
  SimulatedSwitch(SwitchId id, SwitchProfile profile, std::uint64_t seed = 1);

  [[nodiscard]] SwitchId id() const { return id_; }
  [[nodiscard]] const SwitchProfile& profile() const { return profile_; }

  /// Apply one flow_mod at simulated time `now`; mutates tables and returns
  /// the charged control-plane processing time (or a rejection).
  FlowModOutcome apply_flow_mod(const of::FlowMod& fm, SimTime now);

  /// Forward one data-plane packet at `now`, updating per-flow counters and
  /// performing any traffic-triggered placement (microflow install,
  /// policy-cache promotion).
  ForwardOutcome forward(const of::Packet& pkt, SimTime now);

  [[nodiscard]] of::FeaturesReply features() const;
  [[nodiscard]] of::TableStatsReply table_stats() const;
  [[nodiscard]] of::FlowStatsReply flow_stats(const of::Match& filter) const;

  /// Aggregate counters over all rules subsumed by `filter`.
  [[nodiscard]] of::AggregateStatsReply aggregate_stats(const of::Match& filter) const;

  /// Switch description (vendor/model strings from the profile).
  [[nodiscard]] of::DescStatsReply description() const;

  /// Per-port rx/tx counters; `port_no` = kPortNone for all ports.
  [[nodiscard]] of::PortStatsReply port_stats(std::uint16_t port_no) const;

  // --- switch configuration & ports ----------------------------------------
  [[nodiscard]] of::GetConfigReply config() const;
  void set_config(const of::SetConfig& cfg);

  /// Administratively configure a port (OFPT_PORT_MOD): masked config bits.
  void apply_port_mod(const of::PortMod& pm);

  /// Simulate a physical link transition on a port; queues a PORT_STATUS
  /// notification for the controller and drops traffic on downed ports.
  void set_port_link(std::uint16_t port_no, bool up);

  [[nodiscard]] bool port_forwarding(std::uint16_t port_no) const;

  /// Take queued PORT_STATUS notifications.
  std::vector<of::PortStatus> drain_port_status();

  /// Expire flows whose idle/hard timeout elapsed by `now`. Expired entries
  /// with OFPFF_SEND_FLOW_REM queue a FLOW_REMOVED notice; the channel
  /// drains the queue. Invoked lazily by the channel before each message
  /// and by forward(), so expiry is observed no later than the next
  /// interaction with the switch.
  void sweep_timeouts(SimTime now);

  /// Take the queued FLOW_REMOVED notifications.
  std::vector<of::FlowRemoved> drain_removals();

  /// Remove all rules and reinstall the default route; clears counters.
  void reset();

  // --- white-box introspection (tests, benches, ground truth) -------------
  [[nodiscard]] std::size_t total_rules() const;
  [[nodiscard]] std::size_t bounded_levels() const { return levels_.size(); }
  [[nodiscard]] std::size_t level_size(std::size_t level) const;
  [[nodiscard]] std::size_t software_size() const { return software_.size(); }
  [[nodiscard]] std::size_t microflow_size() const { return microflow_.size(); }
  /// Entries currently resident at a bounded level.
  [[nodiscard]] std::vector<const tables::FlowEntry*> level_entries(std::size_t level) const;
  /// True if a rule with this match+priority currently sits at `level`.
  [[nodiscard]] bool resident_at_level(const of::Match& match, std::uint16_t priority,
                                       std::size_t level) const;
  /// Ground-truth capacity (entries) of a bounded level for the default
  /// single-wide shapes used by the probing patterns.
  [[nodiscard]] std::size_t level_capacity(std::size_t level) const;

  LatencyModel& latency() { return latency_; }

  // --- semantic misbehavior (see misbehavior.h) ----------------------------
  /// Arm a misbehavior profile. Events activate lazily in sweep_timeouts()
  /// once virtual time passes their scheduled instant; lie budgets are then
  /// consumed by subsequent operations, drift applies immediately. Replaces
  /// any previous profile but keeps accumulated stats.
  void set_misbehavior(MisbehaviorProfile profile);

  /// Drop pending events and unconsumed lie budgets (drift that already
  /// applied persists — the hardware really changed). Stats are kept.
  void clear_misbehavior();

  [[nodiscard]] const MisbehaviorStats& misbehavior_stats() const;

  /// Events not yet activated + lie occurrences still armed.
  [[nodiscard]] std::size_t misbehavior_pending() const;

  /// Truncate bounded level `level` to `new_capacity_slots`, displacing
  /// highest-physical-position entries into the software table when the
  /// profile has one (else they are lost). Returns entries displaced.
  std::size_t shrink_level(std::size_t level, std::size_t new_capacity_slots);

  // --- controller-epoch fencing (HA failover; see openflow/epoch.h) --------
  struct EpochClaim {
    bool accepted = false;
    std::uint32_t current_epoch = 0;
  };
  /// Explicit mastership claim (the vendor epoch-claim message lands here).
  /// Monotonic: a claim below the highest epoch this switch has seen is
  /// refused, so a deposed primary cannot re-fence the switch. Any accepted
  /// claim also re-synchronizes a rebooted switch (see epoch_synced()).
  EpochClaim claim_epoch(std::uint32_t epoch);

  /// Highest controller epoch that has claimed this switch (0 = never
  /// fenced). Fenced flow_mods carrying a *higher* epoch adopt it silently
  /// on first contact — so bringing up HA adds no extra wire traffic.
  [[nodiscard]] std::uint32_t controller_epoch() const {
    return controller_epoch_;
  }

  /// False between a reboot and the next successful claim_epoch(): a switch
  /// that was fenced before crashing lost its epoch memory with its tables,
  /// so it refuses *all* fenced flow_mods (pre-reboot frames still buffered
  /// in flight included) until the current primary re-handshakes.
  [[nodiscard]] bool epoch_synced() const { return epoch_synced_; }

  /// Fenced flow_mods refused for carrying a stale epoch or arriving before
  /// post-reboot re-sync. Survives reset(): it is a controller-visible
  /// diagnostic of split-brain pressure, not table state.
  [[nodiscard]] std::uint64_t stale_epoch_rejections() const {
    return stale_epoch_rejections_;
  }

  /// Invariant counter: fenced mutations *applied* while stale. Any nonzero
  /// value is a fencing bug; the chaos oracles assert it stays zero.
  [[nodiscard]] std::uint64_t stale_epoch_applied() const {
    return stale_epoch_applied_;
  }

 private:
  FlowModOutcome do_add(tables::FlowEntry entry, SimTime now);
  FlowModOutcome do_modify(const of::FlowMod& fm, SimTime now, bool strict);
  FlowModOutcome do_delete(const of::FlowMod& fm, SimTime now, bool strict);
  FlowModOutcome reject(const std::string& reason, of::FlowModFailedCode code);

  /// Insert into the bounded-level cascade (kPolicyCache). Returns shifts.
  bool cascade_insert(tables::FlowEntry entry, std::size_t* shifts,
                      bool* landed_software);

  /// Promote the policy-best software/lower-level entries into freed slots.
  void rebalance();

  tables::FlowEntry* find_strict_anywhere(const of::Match& match,
                                          std::uint16_t priority,
                                          std::size_t* level_out);

  void install_default_route();

  /// Lazily allocated misbehavior engine state (absent on the honest fast
  /// path so fault-free runs stay bit-identical and zero-cost).
  struct Misbehavior {
    std::vector<MisbehaviorEvent> events;  ///< sorted by `at`, ascending
    std::size_t next_event = 0;
    std::size_t silent_drop_budget = 0;
    std::size_t inversion_budget = 0;
    std::size_t stale_budget = 0;
    of::FlowStatsReply stale_snapshot;  ///< honest state at activation time
    MisbehaviorStats stats;
  };
  /// Activate events whose time has come; called from sweep_timeouts().
  void activate_misbehavior(SimTime now);
  void fabricate_removals(std::size_t count);

  SwitchId id_;
  SwitchProfile profile_;
  LatencyModel latency_;
  std::vector<tables::Tcam> levels_;
  tables::SoftwareTable software_;
  tables::MicroflowCache microflow_;
  struct PortState {
    std::uint32_t config = 0;  // ofp_port_config bits
    std::uint32_t state = 0;   // ofp_port_state bits
    of::PortStatsEntry counters;
  };
  PortState& port(std::uint16_t port_no);
  [[nodiscard]] of::PhyPort phy_port(std::uint16_t port_no) const;

  FlowId next_flow_id_ = 1;
  std::uint32_t controller_epoch_ = 0;
  bool epoch_synced_ = true;
  std::uint64_t stale_epoch_rejections_ = 0;
  std::uint64_t stale_epoch_applied_ = 0;
  std::unique_ptr<Misbehavior> mis_;
  std::vector<of::FlowRemoved> pending_removals_;
  std::vector<of::PortStatus> pending_port_status_;
  std::map<std::uint16_t, PortState> ports_;
  std::uint16_t miss_send_len_ = 128;
  std::uint16_t config_flags_ = 0;
  std::uint64_t lookup_count_ = 0;
  std::uint64_t matched_count_ = 0;
  SimTime last_now_{};
};

}  // namespace tango::switchsim
