// Standby controller shadow (HA tentpole, part 2 of 3).
//
// The standby consumes the replication stream and maintains a bounded-lag
// shadow of the primary: the knowledge base and trust snapshots from the
// last checkpoint, plus one TxnShadow per journaled transaction — the full
// shipped intent list, which entries were acked on the wire, and whether
// the primary reported the commit finished. At takeover, the unfinished
// shadows are exactly the transactions in flight at the crash; the shipped
// journal is everything the new primary needs to roll each one forward or
// back.
//
// Failover detection is a heartbeat watchdog: the threshold is
// missed_heartbeats * expected-interval, where the expected interval is
// learned from observed inter-arrival times via the same RttEstimator the
// executor uses (satellite: adaptive deadlines instead of hand-tuned), with
// the configured interval as the fallback/ceiling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "ha/replication.h"
#include "net/rtt.h"
#include "tango/tango.h"

namespace tango::ha {

/// One journaled transaction as mirrored by the standby.
struct TxnShadow {
  ShippedTxn txn;
  /// dag_id -> accepted, for entries whose ack record arrived.
  std::map<std::size_t, bool> acked;
  bool finished = false;
  bool committed = false;
  bool rolled_back = false;
};

struct StandbyStats {
  std::uint64_t records_received = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t checkpoints_applied = 0;
  std::uint64_t txns_shadowed = 0;
  /// Upstream losses detected from seq jumps (loss windows, partitions).
  std::uint64_t seq_gaps = 0;
  SimTime last_heartbeat_at{};
  SimTime last_checkpoint_at{};
  /// Worst delivery delay observed (delivered_at - sent_at).
  SimDuration max_replication_lag{};
};

struct StandbyOptions {
  /// Expected heartbeat interval (fallback for the adaptive watchdog).
  SimDuration heartbeat_interval = millis(10);
  /// Heartbeats that must go missing before the primary is suspected.
  std::size_t missed_heartbeats = 3;
  /// Learn the interval from observed arrivals (off = fixed threshold).
  bool adaptive = true;
};

class StandbyController {
 public:
  explicit StandbyController(StandbyOptions options) : options_(options) {}

  /// Consume one delivered record at virtual time `now`.
  void receive(const ReplicationRecord& rec, SimTime now);

  /// Failover verdict: no heartbeat for longer than threshold(). Requires
  /// at least one received heartbeat (arm() seeds the clock at start).
  [[nodiscard]] bool primary_suspect(SimTime now) const;

  /// Current miss threshold: missed_heartbeats * learned interval, capped
  /// at missed_heartbeats * configured interval.
  [[nodiscard]] SimDuration threshold() const;

  /// Seed the watchdog clock (HA start / post-takeover re-arm): heartbeats
  /// are considered current as of `now`.
  void arm(SimTime now) { stats_.last_heartbeat_at = now; armed_ = true; }

  /// Shadow knowledge from the last checkpoint, keyed by switch.
  [[nodiscard]] const std::map<SwitchId, core::SwitchKnowledge>& knowledge() const {
    return knowledge_;
  }
  [[nodiscard]] const std::map<SwitchId, HealthSnapshot>& health() const {
    return health_;
  }

  /// Age of the shadow knowledge (time since the last applied checkpoint).
  [[nodiscard]] SimDuration knowledge_age(SimTime now) const {
    return now - stats_.last_checkpoint_at;
  }

  [[nodiscard]] const std::map<std::uint32_t, TxnShadow>& txns() const {
    return txns_;
  }

  /// Unfinished shadows — the transactions in flight at the crash.
  [[nodiscard]] std::map<std::uint32_t, TxnShadow> inflight() const;

  /// Finished shadows whose primary reported committed=true — takeover must
  /// not lose these (the "no committed transaction lost" oracle's input).
  [[nodiscard]] std::map<std::uint32_t, TxnShadow> committed() const;

  /// Drop all shadow transaction state (a fresh epoch's stream begins; the
  /// new primary re-journals whatever is still in flight).
  void reset_shadow() { txns_.clear(); }

  [[nodiscard]] const StandbyStats& stats() const { return stats_; }

 private:
  StandbyOptions options_;
  bool armed_ = false;
  std::uint64_t last_seq_ = 0;
  net::RttEstimator interval_estimator_;
  std::map<SwitchId, core::SwitchKnowledge> knowledge_;
  std::map<SwitchId, HealthSnapshot> health_;
  std::map<std::uint32_t, TxnShadow> txns_;
  StandbyStats stats_;
};

}  // namespace tango::ha
