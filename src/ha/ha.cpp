#include "ha/ha.h"

#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "common/logging.h"
#include "openflow/epoch.h"
#include "scheduler/reconciler.h"
#include "tango/knowledge_io.h"

namespace tango::ha {

namespace {

/// True when `cookie` is fenced and its txn bits belong to `txn_id`.
bool cookie_matches_txn(std::uint64_t cookie, std::uint32_t txn_id) {
  if (of::epoch_of_cookie(cookie) == 0) return false;
  const auto txn = static_cast<std::uint32_t>(cookie >> 32) & of::kCookieTxnMask;
  return txn == (txn_id & of::kCookieTxnMask);
}

}  // namespace

HaController::HaController(net::Network& network,
                           core::TangoController& primary, HaOptions options)
    : network_(network),
      options_(options),
      active_(&primary),
      link_(network.events(), options.replication_delay),
      replicator_(link_, &epoch_),
      standby_(StandbyOptions{options.heartbeat_interval,
                              options.missed_heartbeats,
                              options.adaptive_heartbeat}) {
  link_.set_sink(
      [this](const ReplicationRecord& rec) { on_record(rec); });
}

void HaController::start() {
  running_ = true;
  primary_down_ = false;
  ++pulse_gen_;
  standby_.arm(network_.now());
  ship_checkpoint();  // the standby is warm from t0
  schedule_heartbeat();
  schedule_checkpoint();
  arm_watchdog();
}

void HaController::stop() {
  running_ = false;
  ++pulse_gen_;
  ++watchdog_gen_;  // queued timers become fast no-ops
}

sched::TransactionOptions HaController::stamp(sched::TransactionOptions base) {
  base.epoch = epoch_;
  base.journal_sink = &replicator_;
  return base;
}

std::function<bool()> HaController::admission_gate() {
  return [this] { return accepting_; };
}

void HaController::crash_primary() {
  primary_down_ = true;
  ++pulse_gen_;  // heartbeat/checkpoint chains die with the process
}

void HaController::on_record(const ReplicationRecord& rec) {
  // Split-brain guard on the replication plane, mirroring cookie fencing on
  // the data plane: a deposed primary's stragglers (journal records stamped
  // with its old epoch) must not pollute the successor pair's shadow.
  if (rec.epoch != 0 && rec.epoch < epoch_) {
    ++stats_.stale_records_dropped;
    return;
  }
  standby_.receive(rec, network_.now());
  if (rec.type == RecordType::kHeartbeat) arm_watchdog();
}

void HaController::arm_watchdog() {
  if (!running_) return;
  const std::uint64_t gen = ++watchdog_gen_;
  // +1ns: primary_suspect is strict (>), so the deadline event must land
  // just past the threshold boundary.
  network_.events().schedule_after(standby_.threshold() + nanos(1),
                                   [this, gen] {
    if (gen != watchdog_gen_ || !running_) return;
    if (standby_.primary_suspect(network_.now())) takeover_due_ = true;
  });
}

void HaController::schedule_heartbeat() {
  const std::uint64_t gen = pulse_gen_;
  network_.events().schedule_after(options_.heartbeat_interval, [this, gen] {
    if (gen != pulse_gen_ || !running_ || primary_down_) return;
    ReplicationRecord rec;
    rec.type = RecordType::kHeartbeat;
    rec.epoch = epoch_;
    link_.ship(std::move(rec));
    ++stats_.heartbeats_shipped;
    schedule_heartbeat();
  });
}

void HaController::schedule_checkpoint() {
  const std::uint64_t gen = pulse_gen_;
  network_.events().schedule_after(options_.checkpoint_interval, [this, gen] {
    if (gen != pulse_gen_ || !running_ || primary_down_) return;
    ship_checkpoint();
    schedule_checkpoint();
  });
}

void HaController::ship_checkpoint() {
  ReplicationRecord rec;
  rec.type = RecordType::kCheckpoint;
  rec.epoch = epoch_;
  std::ostringstream text;
  for (SwitchId id = 1; id <= network_.switch_count(); ++id) {
    if (const auto* know = active_->knowledge(id)) {
      // Keyed by decimal switch id: names don't round-trip through the
      // knowledge_io format, the id is what the successor's adopt() needs.
      core::write_knowledge(text, std::to_string(id), *know);
    }
    if (const auto* h = active_->health().health(id)) {
      rec.health[id] = HealthSnapshot{h->trust, h->quarantined};
    }
  }
  rec.knowledge_text = text.str();
  link_.ship(std::move(rec));
  ++stats_.checkpoints_shipped;
}

const TakeoverReport& HaController::take_over(
    core::TangoController& successor) {
  TakeoverReport rep;
  rep.detected_at = network_.now();
  rep.epoch = ++epoch_;
  accepting_ = false;
  takeover_due_ = false;
  primary_down_ = false;  // the successor is the live primary now
  active_ = &successor;
  ++stats_.failover_count;

  // Snapshot the shadow first: pumping the queue below can deliver records
  // still in flight from the dead primary, and those belong to its epoch.
  const auto inflight = standby_.inflight();
  const auto committed = standby_.committed();
  const auto knowledge = standby_.knowledge();
  const auto health = standby_.health();
  rep.knowledge_age = standby_.knowledge_age(rep.detected_at);

  // 1. Fence: claim the bumped epoch on every switch before issuing any
  //    repair, so a deposed primary's in-flight retries are refused at the
  //    switch rather than racing the replay. Retries outlast reboot windows.
  for (SwitchId id = 1; id <= network_.switch_count(); ++id) {
    bool fenced = false;
    for (std::size_t attempt = 0;
         attempt < options_.fence_attempts && !fenced; ++attempt) {
      const auto verdict =
          network_.claim_epoch_sync(id, epoch_, options_.fence_timeout);
      fenced = !verdict.lost && verdict.accepted;
    }
    if (fenced) {
      ++rep.switches_fenced;
    } else {
      ++rep.fence_failures;
      log::warn("ha takeover: failed to fence epoch " +
                std::to_string(epoch_) + " on switch " + std::to_string(id));
    }
  }

  // 2. Restore the shadow knowledge and trust verdicts into the successor.
  //    adopt() re-tracks health at full trust; restore() overwrites with the
  //    replicated snapshot afterwards.
  for (const auto& [id, know] : knowledge) {
    successor.adopt(know);
    ++rep.knowledge_restored;
  }
  for (const auto& [id, snap] : health) {
    successor.health().restore(id, snap.trust, snap.quarantined,
                               network_.now());
  }

  // 3. WAL discipline: re-arm the *next* standby before replaying anything —
  //    fresh checkpoint plus a re-journal of every in-flight transaction —
  //    so a crash during this takeover's own reconciliation is itself
  //    recoverable (double failover).
  standby_.reset_shadow();
  ship_checkpoint();
  for (const auto& [txn_id, shadow] : inflight) {
    ReplicationRecord begin;
    begin.type = RecordType::kTxnBegin;
    begin.epoch = epoch_;
    begin.txn = shadow.txn;
    begin.txn.epoch = epoch_;
    begin.txn_id = txn_id;
    link_.ship(std::move(begin));
    for (const auto& [dag_id, accepted] : shadow.acked) {
      ReplicationRecord ack;
      ack.type = RecordType::kTxnEntry;
      ack.epoch = epoch_;
      ack.txn_id = txn_id;
      ack.dag_id = dag_id;
      ack.accepted = accepted;
      link_.ship(std::move(ack));
    }
  }
  running_ = true;
  ++pulse_gen_;
  standby_.arm(network_.now());
  schedule_heartbeat();
  schedule_checkpoint();

  // 4. "No committed transaction lost" oracle input: the post images of
  //    transactions the dead primary reported committed, filtered to the
  //    rules each transaction authored (matched by the cookie's txn bits;
  //    the epoch byte differs across failovers, oracles compare modulo it).
  for (const auto& [txn_id, shadow] : committed) {
    auto images = decode_pre_images(shadow.txn);
    for (const auto& entry : shadow.txn.entries) {
      sched::apply_to_image(images[entry.location],
                            decode_flow_mod(entry.intent_frame));
    }
    for (const auto& [sw, image] : images) {
      for (const auto& [key, rule] : image) {
        if (!cookie_matches_txn(rule.cookie, shadow.txn.txn_id)) continue;
        rep.committed_targets[sw].insert_or_assign(key, rule);
      }
    }
  }

  // 5. Replay every in-flight transaction through the reconciler, in txn-id
  //    (journal) order. A scheduled successor crash aborts mid-loop.
  for (const auto& [txn_id, shadow] : inflight) {
    if (crash_at_ && network_.now() >= *crash_at_) {
      rep.aborted = true;
      rep.converged = false;
      crash_at_.reset();
      crash_primary();
      break;
    }
    const bool converged = replay_txn(shadow, rep);
    ++rep.txns_replayed;
    ReplicationRecord fin;
    fin.type = RecordType::kTxnFinish;
    fin.epoch = epoch_;
    fin.txn_id = txn_id;
    fin.committed =
        converged && shadow.txn.policy == sched::RecoveryPolicy::kRollForward;
    fin.rolled_back = shadow.txn.policy == sched::RecoveryPolicy::kRollBack;
    link_.ship(std::move(fin));
  }

  // 6. Knowledge re-validation: the shadow may lag the dead primary by up to
  //    one checkpoint interval; when it does, force sentinel probes so the
  //    successor's knowledge is measured, not assumed, before admission.
  if (!rep.aborted && options_.sentinel_revalidate) {
    const bool force = rep.knowledge_age > options_.checkpoint_interval;
    const auto actions = successor.run_sentinel({}, force);
    rep.sentinel_probes = actions.size();
  }

  if (!rep.aborted) accepting_ = true;
  rep.completed_at = network_.now();
  rep.takeover_ms = (rep.completed_at - rep.detected_at).ms();
  stats_.last_takeover_ms = rep.takeover_ms;
  arm_watchdog();
  takeovers_.push_back(std::move(rep));
  return takeovers_.back();
}

bool HaController::replay_txn(const TxnShadow& shadow, TakeoverReport& rep) {
  const bool forward =
      shadow.txn.policy == sched::RecoveryPolicy::kRollForward;

  // Target image per policy: the pre image (rollback), or the pre image
  // with the journaled intents applied in order (roll-forward).
  auto desired = decode_pre_images(shadow.txn);

  // Footprint for scoped replay: pre-image slots plus each intent's slot.
  std::map<SwitchId, std::set<std::string>> footprint;
  for (const auto& [sw, image] : desired) {
    for (const auto& [key, rule] : image) {
      (void)rule;
      footprint[sw].insert(key);
    }
  }

  std::map<std::size_t, std::size_t> order;  // dag_id -> journal index
  for (std::size_t i = 0; i < shadow.txn.entries.size(); ++i) {
    const auto& entry = shadow.txn.entries[i];
    order[entry.dag_id] = i;
    const auto fm = decode_flow_mod(entry.intent_frame);
    footprint[entry.location].insert(sched::rule_key(fm.match, fm.priority));
    if (forward) sched::apply_to_image(desired[entry.location], fm);
  }

  // Re-fence every desired cookie to the successor's epoch: the switches
  // were just fenced, so repairs carrying the dead primary's epoch would be
  // refused as stale. Unfenced (baseline) cookies pass through.
  for (auto& [sw, image] : desired) {
    (void)sw;
    for (auto& [key, rule] : image) {
      (void)key;
      rule.cookie = of::refence_cookie(rule.cookie, epoch_);
    }
  }

  // Attribution by cookie: replayed rules carry [epoch|txn|dag] cookies, so
  // the journal index doubles as the reconciler's dependency order —
  // forward order for roll-forward, reversed to unwind for rollback.
  // Baseline restores (cookie 0) get no ordering constraint.
  const auto author = [this, &shadow, &order](
                          SwitchId, const sched::RuleImage& rule)
      -> std::optional<std::size_t> {
    (void)this;
    if (!cookie_matches_txn(rule.cookie, shadow.txn.txn_id))
      return std::nullopt;
    const auto dag = static_cast<std::size_t>(rule.cookie & 0xffffffffu);
    if (order.find(dag) == order.end()) return std::nullopt;
    return dag;
  };
  const auto precede = [forward, &order](std::size_t a, std::size_t b) {
    return forward ? order.at(a) < order.at(b) : order.at(a) > order.at(b);
  };

  sched::ReconcilerOptions ropts;
  ropts.readback_timeout = options_.readback_timeout;
  ropts.max_readback_retries = options_.max_readback_retries;
  ropts.max_rounds = options_.max_reconcile_rounds;
  ropts.exec = options_.replay_exec;
  // Stale leftovers still carry the deposed primary's epoch; their DELETEs
  // must be stamped with ours or the fence we just raised refuses them.
  ropts.repair_epoch = epoch_;
  if (shadow.txn.scoped) {
    // Honour the primary's footprint scoping: co-resident tenants' rules
    // stay invisible to this replay's diff.
    ropts.scope = [&footprint, &author](SwitchId sw,
                                        const sched::RuleImage& rule) {
      if (author(sw, rule).has_value()) return true;
      const auto it = footprint.find(sw);
      return it != footprint.end() &&
             it->second.count(sched::rule_key(rule.match, rule.priority)) > 0;
    };
  }

  sched::Reconciler reconciler(network_, ropts);
  const auto stats = reconciler.run(desired, author, precede);

  rep.repairs_issued += stats.repairs_issued;
  rep.stale_rules_removed += stats.stale_rules_removed;
  if (!stats.converged) rep.converged = false;
  if (forward) {
    ++rep.txns_rolled_forward;
  } else {
    ++rep.txns_rolled_back;
  }
  for (const auto& [sw, image] : desired) {
    auto& target = rep.targets[sw];
    for (const auto& [key, rule] : image) target.insert_or_assign(key, rule);
  }
  return stats.converged;
}

void HaController::publish(telemetry::Telemetry* t) const {
  if (t == nullptr) return;
  t->metrics.counter("ha.failover_count").inc(stats_.failover_count);
  t->metrics.counter("ha.heartbeats_shipped").inc(stats_.heartbeats_shipped);
  t->metrics.counter("ha.checkpoints_shipped")
      .inc(stats_.checkpoints_shipped);
  t->metrics.counter("ha.records_delivered").inc(link_.stats().delivered);
  t->metrics.gauge("ha.takeover_ms").set(stats_.last_takeover_ms);
  t->metrics.gauge("ha.replication_lag_ns")
      .set(static_cast<double>(standby_.stats().max_replication_lag.ns()));
  std::uint64_t stale = 0;
  for (SwitchId id = 1; id <= network_.switch_count(); ++id) {
    stale += network_.sw(id).stale_epoch_rejections();
  }
  t->metrics.counter("ha.stale_epoch_rejections").inc(stale);
}

}  // namespace tango::ha
