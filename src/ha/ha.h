// Controller high availability (HA tentpole, part 3 of 3): primary/standby
// pair, epoch-fenced failover, deterministic takeover reconciliation.
//
// An HaController wires an acting-primary TangoController to a standby
// shadow over a ReplicationLink:
//
//  * while healthy, the primary heartbeats and checkpoints its knowledge
//    base onto the link, and every transaction stamped via stamp() ships
//    its write-ahead journal (sched::JournalSink bridge) — the standby
//    holds a bounded-lag shadow of what the primary knows and was doing;
//  * failover is detected by the standby's heartbeat watchdog (adaptive
//    threshold, see standby.h) and made split-brain safe by monotonic
//    epochs fenced into flow-mod cookies (openflow/epoch.h): take_over()
//    bumps the epoch and claims it on every switch first, so a deposed
//    primary's in-flight retries are refused at the switch with EPERM;
//  * takeover then replays the shipped journal through the Reconciler —
//    readback, diff against the policy's target image (post for
//    roll-forward, pre for rollback), ordered repair — with every desired
//    cookie re-fenced to the new epoch, re-validates knowledge freshness
//    through the sentinel, and only then re-opens intent admission.
//
// WAL discipline for double failover: before replaying anything, the new
// primary ships a fresh checkpoint and re-journals every in-flight
// transaction to the *next* standby — so a crash during its own takeover
// reconciliation is itself recoverable.
//
// Byte-identity: with HA running but no faults, nothing here touches a
// switch channel (heartbeats/checkpoints ride the replication link only;
// epoch fencing piggybacks on cookies via first-contact adoption) and
// nothing writes telemetry unless publish() is called explicitly — all
// existing reports stay byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "ha/replication.h"
#include "ha/standby.h"
#include "scheduler/transaction.h"
#include "tango/tango.h"
#include "telemetry/trace.h"

namespace tango::ha {

struct HaOptions {
  SimDuration heartbeat_interval = millis(10);
  std::size_t missed_heartbeats = 3;
  /// Learn the heartbeat interval from arrivals (RttEstimator) instead of
  /// trusting the configured value; the fixed threshold stays the ceiling.
  bool adaptive_heartbeat = true;
  SimDuration checkpoint_interval = millis(50);
  /// One-way replication link delivery delay.
  SimDuration replication_delay = micros(150);
  /// Per-attempt round-trip budget + attempts when fencing the new epoch
  /// onto a switch at takeover (retries outlast a reboot window).
  SimDuration fence_timeout = millis(50);
  std::size_t fence_attempts = 10;
  /// Reconciler knobs for takeover journal replay.
  SimDuration readback_timeout = millis(200);
  std::size_t max_readback_retries = 6;
  std::size_t max_reconcile_rounds = 6;
  /// Executor options for replay repair traffic.
  sched::ExecutorOptions replay_exec;
  /// Re-validate knowledge through the sentinel before accepting intents;
  /// the probe is forced when the shadow knowledge is older than one
  /// checkpoint interval (standby lag exceeded the freshness budget).
  bool sentinel_revalidate = true;
};

struct TakeoverReport {
  std::uint32_t epoch = 0;
  SimTime detected_at{};
  SimTime completed_at{};
  double takeover_ms = 0.0;
  std::size_t switches_fenced = 0;
  std::size_t fence_failures = 0;
  std::size_t knowledge_restored = 0;
  /// Shadow knowledge age at takeover (replication lag the successor ate).
  SimDuration knowledge_age{};
  std::size_t txns_replayed = 0;
  std::size_t txns_rolled_forward = 0;
  std::size_t txns_rolled_back = 0;
  std::size_t repairs_issued = 0;
  std::size_t stale_rules_removed = 0;
  std::size_t sentinel_probes = 0;
  bool converged = true;
  /// Double failover: this takeover's controller crashed mid-replay.
  bool aborted = false;
  /// The reconciler's target image per replayed switch — the oracle input:
  /// post-takeover readback must agree with this.
  std::map<SwitchId, sched::TableImage> targets;
  /// Post images of transactions the dead primary had already committed —
  /// the "no committed transaction lost" oracle input (rule identity is
  /// compared modulo the cookie's epoch byte).
  std::map<SwitchId, sched::TableImage> committed_targets;
};

struct HaStats {
  std::uint64_t heartbeats_shipped = 0;
  std::uint64_t checkpoints_shipped = 0;
  std::uint64_t failover_count = 0;
  /// Delivered records refused because they carried a deposed primary's
  /// epoch (split-brain guard on the replication plane).
  std::uint64_t stale_records_dropped = 0;
  double last_takeover_ms = 0.0;
};

class HaController {
 public:
  /// Both controllers outlive this object; `primary` starts as the acting
  /// primary. Successors are passed to take_over() explicitly.
  HaController(net::Network& network, core::TangoController& primary,
               HaOptions options);

  /// Begin heartbeating + checkpointing (ships an initial checkpoint so the
  /// standby is warm from t0) and arm the failover watchdog.
  void start();

  /// Stop scheduling new heartbeats/checkpoints/watchdogs so the event
  /// queue can drain. Already-queued no-op timers still fire.
  void stop();

  /// Stamp transaction options with the acting epoch and the journal
  /// replication sink. The HA path to begin_update()/UpdateTransaction.
  [[nodiscard]] sched::TransactionOptions stamp(
      sched::TransactionOptions base);

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] core::TangoController& active() { return *active_; }
  [[nodiscard]] bool accepting_intents() const { return accepting_; }
  /// Admission gate for ServiceOptions::admission_gate: closed from crash
  /// detection until takeover reconciliation + sentinel revalidation done.
  [[nodiscard]] std::function<bool()> admission_gate();

  // --- chaos hooks ---------------------------------------------------------
  /// The acting primary's process dies now: heartbeats/checkpoints stop,
  /// journal shipping stops. The caller abandons in-flight transactions
  /// (UpdateTransaction::abandon) — or deliberately does not, to model a
  /// partitioned zombie still retrying under its stale epoch.
  void crash_primary();
  /// Arm a crash of the *next acting primary* at virtual time `at` — fires
  /// between takeover replay steps (double-failover scenario).
  void schedule_primary_crash(SimTime at) { crash_at_ = at; }

  [[nodiscard]] ReplicationLink& link() { return link_; }
  [[nodiscard]] StandbyController& standby() { return standby_; }

  // --- failover ------------------------------------------------------------
  /// True once the watchdog declared the primary dead. Cleared by
  /// take_over().
  [[nodiscard]] bool takeover_due() const { return takeover_due_; }

  /// Promote `successor`: bump + fence the epoch on every switch, restore
  /// the shadow knowledge/trust, re-arm the next standby (WAL re-ship),
  /// replay every in-flight transaction through the Reconciler, re-validate
  /// via the sentinel, re-open admission. Synchronous — pumps the event
  /// queue. Returns the report (also appended to takeovers()).
  const TakeoverReport& take_over(core::TangoController& successor);

  [[nodiscard]] const std::vector<TakeoverReport>& takeovers() const {
    return takeovers_;
  }
  [[nodiscard]] const HaStats& stats() const { return stats_; }

  /// Mirror ha.* metrics into a telemetry context. Never called implicitly:
  /// fault-free runs leave every existing report byte-identical.
  void publish(telemetry::Telemetry* t) const;

 private:
  void on_record(const ReplicationRecord& rec);
  void arm_watchdog();
  void schedule_heartbeat();
  void schedule_checkpoint();
  void ship_checkpoint();
  /// Replay one in-flight transaction per its policy; merges stats+targets
  /// into `rep`. Returns the reconciler's converged verdict.
  bool replay_txn(const TxnShadow& shadow, TakeoverReport& rep);

  net::Network& network_;
  HaOptions options_;
  core::TangoController* active_;
  ReplicationLink link_;
  JournalReplicator replicator_;
  StandbyController standby_;

  std::uint32_t epoch_ = 1;
  bool running_ = false;
  bool primary_down_ = false;
  bool accepting_ = true;
  bool takeover_due_ = false;
  std::uint64_t watchdog_gen_ = 0;
  /// Generation guard for the self-rescheduling heartbeat/checkpoint
  /// chains: bumping it orphans any queued pulse (crash, takeover, stop).
  std::uint64_t pulse_gen_ = 0;
  std::optional<SimTime> crash_at_;
  std::vector<TakeoverReport> takeovers_;
  HaStats stats_;
};

}  // namespace tango::ha
