// Primary -> standby replication log (HA tentpole, part 1 of 3).
//
// The primary streams three kinds of records to its standby over a
// deterministic virtual-time link:
//
//  * heartbeats   — liveness; the standby's failover watchdog feeds on
//                   their inter-arrival times.
//  * checkpoints  — the knowledge base (knowledge_io text serialization)
//                   plus per-switch KnowledgeHealth trust snapshots, shipped
//                   periodically so the standby's shadow has bounded lag.
//  * journal      — per-transaction records bridged straight from
//                   sched::JournalSink: the full intent journal at
//                   construction (WAL discipline — shipped before the first
//                   frame hits the wire), per-entry acks, and the final
//                   outcome. Flow_mods travel as OF-codec wire frames, so
//                   the standby decodes exactly the bytes a switch would
//                   have seen.
//
// The link is built on the shared EventQueue: constant delivery delay,
// schedulable loss windows and a partition flag (the chaos layer's
// replication faults), strictly ordered seq numbers so the receiver can
// detect gaps. Everything is deterministic — no RNG, no wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "scheduler/transaction.h"
#include "sim/event_queue.h"

namespace tango::ha {

enum class RecordType : std::uint8_t {
  kHeartbeat = 0,
  kCheckpoint = 1,
  kTxnBegin = 2,
  kTxnEntry = 3,
  kTxnFinish = 4,
};

std::string to_string(RecordType type);

/// One journaled intent as shipped: OF-encoded frames, journal order.
struct ShippedEntry {
  std::size_t dag_id = 0;
  SwitchId location = 0;
  std::vector<std::uint8_t> intent_frame;
  std::vector<std::vector<std::uint8_t>> inverse_frames;
};

/// A transaction's full write-ahead journal as the standby receives it.
struct ShippedTxn {
  std::uint32_t txn_id = 0;
  std::uint32_t epoch = 0;
  sched::RecoveryPolicy policy = sched::RecoveryPolicy::kRollForward;
  /// The primary scoped reconciliation to the txn's footprint (multi-tenant
  /// commits); takeover replay must honour the same scope.
  bool scoped = false;
  std::vector<ShippedEntry> entries;
  /// Pre-update snapshot per affected switch, as restoring ADD frames —
  /// the rollback target.
  std::map<SwitchId, std::vector<std::vector<std::uint8_t>>> pre_frames;
};

/// KnowledgeHealth state worth surviving a failover.
struct HealthSnapshot {
  double trust = 1.0;
  bool quarantined = false;
};

struct ReplicationRecord {
  RecordType type = RecordType::kHeartbeat;
  std::uint64_t seq = 0;
  SimTime sent_at{};
  /// Epoch of the primary that shipped the record.
  std::uint32_t epoch = 0;

  // kCheckpoint
  std::string knowledge_text;  ///< knowledge_io records, keys = switch ids
  std::map<SwitchId, HealthSnapshot> health;

  // kTxnBegin
  ShippedTxn txn;

  // kTxnEntry / kTxnFinish
  std::uint32_t txn_id = 0;
  std::size_t dag_id = 0;
  bool accepted = false;
  bool committed = false;
  bool rolled_back = false;
};

struct LinkStats {
  std::uint64_t shipped = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost_to_loss = 0;
  std::uint64_t lost_to_partition = 0;
  std::uint64_t bytes_shipped = 0;
};

/// Deterministic one-way record stream over the shared event queue.
class ReplicationLink {
 public:
  using Sink = std::function<void(const ReplicationRecord&)>;

  ReplicationLink(sim::EventQueue& events, SimDuration delay)
      : events_(events), delay_(delay) {}

  /// Receiver for delivered records (the standby). Replaces any previous.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Ship one record: stamps seq + send time, then either delivers it
  /// `delay` later or drops it (loss window / partition). Determinism note:
  /// the drop decision is made at send time from scheduled windows, never
  /// from randomness.
  void ship(ReplicationRecord rec);

  /// Drop every record shipped in [from, to).
  void add_loss_window(SimTime from, SimTime to) {
    loss_windows_.emplace_back(from, to);
  }

  /// Blackhole the link until further notice (controller partition).
  void set_partitioned(bool partitioned) { partitioned_ = partitioned; }
  [[nodiscard]] bool partitioned() const { return partitioned_; }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }

  /// Rough wire-size accounting (frames + text + fixed header), for lag and
  /// soak metrics only — nothing is actually serialized per record.
  static std::size_t wire_cost(const ReplicationRecord& rec);

 private:
  [[nodiscard]] bool in_loss_window(SimTime at) const;

  sim::EventQueue& events_;
  SimDuration delay_;
  Sink sink_;
  bool partitioned_ = false;
  std::vector<std::pair<SimTime, SimTime>> loss_windows_;
  std::uint64_t next_seq_ = 1;
  LinkStats stats_;
};

/// Bridges sched::JournalSink onto the replication link: encodes the
/// journal as wire frames and ships kTxnBegin / kTxnEntry / kTxnFinish
/// records. The epoch pointer tracks the acting primary's epoch (owned by
/// HaController) so records are stamped without coupling the two headers.
class JournalReplicator : public sched::JournalSink {
 public:
  JournalReplicator(ReplicationLink& link, const std::uint32_t* epoch)
      : link_(link), epoch_(epoch) {}

  void on_txn_begin(const sched::UpdateTransaction& txn) override;
  void on_entry_acked(const sched::UpdateTransaction& txn, std::size_t dag_id,
                      bool accepted) override;
  void on_txn_finish(const sched::UpdateTransaction& txn,
                     const sched::TransactionReport& report) override;

  /// Encode one ShippedTxn from a live transaction (also used by takeover
  /// to re-journal in-flight transactions to the next standby).
  static ShippedTxn ship_txn(const sched::UpdateTransaction& txn,
                             std::uint32_t epoch);

 private:
  /// The epoch a transaction's records are stamped with: the epoch it was
  /// stamped under at begin (so a deposed primary's stragglers carry its
  /// old epoch), falling back to the acting epoch for unstamped commits.
  [[nodiscard]] std::uint32_t epoch_of(
      const sched::UpdateTransaction& txn) const;

  ReplicationLink& link_;
  const std::uint32_t* epoch_;
};

/// Decode a shipped OF frame back into its FlowMod (asserts shape).
of::FlowMod decode_flow_mod(const std::vector<std::uint8_t>& frame);

/// Decode a ShippedTxn's pre-image frames into reconciler table images.
std::map<SwitchId, sched::TableImage> decode_pre_images(const ShippedTxn& txn);

}  // namespace tango::ha
