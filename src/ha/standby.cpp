#include "ha/standby.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "tango/knowledge_io.h"

namespace tango::ha {

namespace {
/// The estimator keys samples by SwitchId; the heartbeat stream is a single
/// "peer", so it lives under one well-known key.
constexpr SwitchId kHeartbeatPeer = 0;
}  // namespace

void StandbyController::receive(const ReplicationRecord& rec, SimTime now) {
  ++stats_.records_received;
  stats_.max_replication_lag =
      std::max(stats_.max_replication_lag, now - rec.sent_at);
  if (last_seq_ != 0 && rec.seq > last_seq_ + 1) {
    stats_.seq_gaps += rec.seq - last_seq_ - 1;
  }
  last_seq_ = std::max(last_seq_, rec.seq);

  switch (rec.type) {
    case RecordType::kHeartbeat: {
      ++stats_.heartbeats_received;
      if (armed_ && options_.adaptive) {
        interval_estimator_.observe(kHeartbeatPeer,
                                    now - stats_.last_heartbeat_at);
      }
      stats_.last_heartbeat_at = now;
      armed_ = true;
      break;
    }
    case RecordType::kCheckpoint: {
      std::istringstream in(rec.knowledge_text);
      auto parsed = core::read_knowledge(in);
      if (!parsed.ok()) {
        log::warn("ha standby: undecodable checkpoint dropped (" +
                  parsed.error() + ")");
        break;
      }
      knowledge_.clear();
      for (auto& [key, know] : parsed.value()) {
        // Checkpoint keys are decimal switch ids (names don't survive the
        // knowledge_io format; the id is what adopt() needs).
        const auto id = static_cast<SwitchId>(std::stoul(key));
        know.switch_id = id;
        knowledge_[id] = std::move(know);
      }
      health_ = rec.health;
      stats_.last_checkpoint_at = now;
      ++stats_.checkpoints_applied;
      break;
    }
    case RecordType::kTxnBegin: {
      TxnShadow shadow;
      shadow.txn = rec.txn;
      txns_[rec.txn_id] = std::move(shadow);
      ++stats_.txns_shadowed;
      break;
    }
    case RecordType::kTxnEntry: {
      const auto it = txns_.find(rec.txn_id);
      if (it == txns_.end()) break;  // begin record lost upstream
      it->second.acked[rec.dag_id] = rec.accepted;
      break;
    }
    case RecordType::kTxnFinish: {
      const auto it = txns_.find(rec.txn_id);
      if (it == txns_.end()) break;
      it->second.finished = true;
      it->second.committed = rec.committed;
      it->second.rolled_back = rec.rolled_back;
      break;
    }
  }
}

SimDuration StandbyController::threshold() const {
  const auto fixed =
      options_.heartbeat_interval *
      static_cast<std::int64_t>(std::max<std::size_t>(1, options_.missed_heartbeats));
  if (!options_.adaptive) return fixed;
  // Adaptive: learned interval (srtt + 4*rttvar covers jitter), same missed
  // budget, never looser than the configured fallback.
  const auto learned = interval_estimator_.timeout_for(
      kHeartbeatPeer, options_.heartbeat_interval);
  return std::min(
      fixed, learned * static_cast<std::int64_t>(
                 std::max<std::size_t>(1, options_.missed_heartbeats)));
}

bool StandbyController::primary_suspect(SimTime now) const {
  if (!armed_) return false;
  return now - stats_.last_heartbeat_at > threshold();
}

std::map<std::uint32_t, TxnShadow> StandbyController::inflight() const {
  std::map<std::uint32_t, TxnShadow> out;
  for (const auto& [id, shadow] : txns_) {
    if (!shadow.finished) out.emplace(id, shadow);
  }
  return out;
}

std::map<std::uint32_t, TxnShadow> StandbyController::committed() const {
  std::map<std::uint32_t, TxnShadow> out;
  for (const auto& [id, shadow] : txns_) {
    if (shadow.finished && shadow.committed) out.emplace(id, shadow);
  }
  return out;
}

}  // namespace tango::ha
