#include "ha/replication.h"

#include <cassert>
#include <utility>

#include "openflow/codec.h"

namespace tango::ha {

std::string to_string(RecordType type) {
  switch (type) {
    case RecordType::kHeartbeat: return "heartbeat";
    case RecordType::kCheckpoint: return "checkpoint";
    case RecordType::kTxnBegin: return "txn_begin";
    case RecordType::kTxnEntry: return "txn_entry";
    case RecordType::kTxnFinish: return "txn_finish";
  }
  return "?";
}

bool ReplicationLink::in_loss_window(SimTime at) const {
  for (const auto& [from, to] : loss_windows_) {
    if (at >= from && at < to) return true;
  }
  return false;
}

void ReplicationLink::ship(ReplicationRecord rec) {
  rec.seq = next_seq_++;
  rec.sent_at = events_.now();
  ++stats_.shipped;
  stats_.bytes_shipped += wire_cost(rec);
  if (partitioned_) {
    ++stats_.lost_to_partition;
    return;
  }
  if (in_loss_window(rec.sent_at)) {
    ++stats_.lost_to_loss;
    return;
  }
  events_.schedule_after(delay_, [this, rec = std::move(rec)]() {
    ++stats_.delivered;
    if (sink_) sink_(rec);
  });
}

std::size_t ReplicationLink::wire_cost(const ReplicationRecord& rec) {
  std::size_t bytes = 32;  // header: type, seq, epoch, timestamps
  bytes += rec.knowledge_text.size();
  bytes += rec.health.size() * 16;
  for (const auto& entry : rec.txn.entries) {
    bytes += entry.intent_frame.size();
    for (const auto& inv : entry.inverse_frames) bytes += inv.size();
  }
  for (const auto& [sw, frames] : rec.txn.pre_frames) {
    (void)sw;
    for (const auto& f : frames) bytes += f.size();
  }
  return bytes;
}

namespace {

std::vector<std::uint8_t> encode_flow_mod(const of::FlowMod& fm) {
  return of::encode(of::Message{0, fm});
}

/// A pre-image rule as the restoring ADD that would reinstate it.
of::FlowMod restore_of(const sched::RuleImage& rule) {
  of::FlowMod fm;
  fm.command = of::FlowModCommand::kAdd;
  fm.match = rule.match;
  fm.priority = rule.priority;
  fm.actions = rule.actions;
  fm.cookie = rule.cookie;
  return fm;
}

}  // namespace

of::FlowMod decode_flow_mod(const std::vector<std::uint8_t>& frame) {
  const auto msg = of::decode(frame);
  assert(msg.ok());
  const auto* fm = std::get_if<of::FlowMod>(&msg.value().body);
  assert(fm != nullptr);
  return *fm;
}

std::map<SwitchId, sched::TableImage> decode_pre_images(const ShippedTxn& txn) {
  std::map<SwitchId, sched::TableImage> images;
  for (const auto& [sw, frames] : txn.pre_frames) {
    auto& image = images[sw];  // empty table when no frames: wiped pre-state
    for (const auto& frame : frames) {
      sched::apply_to_image(image, decode_flow_mod(frame));
    }
  }
  return images;
}

std::uint32_t JournalReplicator::epoch_of(
    const sched::UpdateTransaction& txn) const {
  // Journal records belong to the epoch the transaction was stamped under —
  // a deposed primary's stragglers must not masquerade as the successor's.
  const auto stamped = txn.options().epoch;
  return stamped != 0 ? stamped : *epoch_;
}

ShippedTxn JournalReplicator::ship_txn(const sched::UpdateTransaction& txn,
                                       std::uint32_t epoch) {
  ShippedTxn out;
  out.txn_id = txn.id();
  out.epoch = epoch;
  out.policy = txn.options().policy;
  out.scoped = txn.options().scope_to_footprint;
  std::set<SwitchId> affected;
  for (const auto& entry : txn.journal()) {
    ShippedEntry shipped;
    shipped.dag_id = entry.dag_id;
    shipped.location = entry.location;
    shipped.intent_frame = encode_flow_mod(entry.intent);
    for (const auto& inv : entry.inverse) {
      shipped.inverse_frames.push_back(encode_flow_mod(inv));
    }
    out.entries.push_back(std::move(shipped));
    affected.insert(entry.location);
  }
  for (const SwitchId sw : affected) {
    auto& frames = out.pre_frames[sw];  // present even when the pre was empty
    for (const auto& [key, rule] : txn.pre_image(sw)) {
      (void)key;
      frames.push_back(encode_flow_mod(restore_of(rule)));
    }
  }
  return out;
}

void JournalReplicator::on_txn_begin(const sched::UpdateTransaction& txn) {
  ReplicationRecord rec;
  rec.type = RecordType::kTxnBegin;
  rec.epoch = epoch_of(txn);
  rec.txn = ship_txn(txn, rec.epoch);
  rec.txn_id = txn.id();
  link_.ship(std::move(rec));
}

void JournalReplicator::on_entry_acked(const sched::UpdateTransaction& txn,
                                       std::size_t dag_id, bool accepted) {
  ReplicationRecord rec;
  rec.type = RecordType::kTxnEntry;
  rec.epoch = epoch_of(txn);
  rec.txn_id = txn.id();
  rec.dag_id = dag_id;
  rec.accepted = accepted;
  link_.ship(std::move(rec));
}

void JournalReplicator::on_txn_finish(const sched::UpdateTransaction& txn,
                                      const sched::TransactionReport& report) {
  ReplicationRecord rec;
  rec.type = RecordType::kTxnFinish;
  rec.epoch = epoch_of(txn);
  rec.txn_id = txn.id();
  rec.committed = report.committed;
  rec.rolled_back = report.rolled_back;
  link_.ship(std::move(rec));
}

}  // namespace tango::ha
