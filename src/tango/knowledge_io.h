// Persistence for the Tango knowledge base.
//
// The paper's architecture (§4) keeps inference results in a central Score
// Database precisely so they can be collected *offline* — "before the
// switch is plugged in the network" — and shared across components. This
// module serializes SwitchKnowledge records to a line-oriented text format
// so a fleet can be probed once in a lab and the learned properties shipped
// with the controller.
//
// Format (one record per switch, human-diffable):
//
//   [switch <name>]
//   layer_sizes = 2047.0 1953.0
//   hit_rule_cap = 1
//   cluster_centers_ms = 0.665 3.7
//   policy = use_time:high priority:low        (optional)
//   tcam_mode = double-wide                     (optional)
//   costs = asc desc same rand mod del          (ms per rule)
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "common/result.h"
#include "tango/tango.h"

namespace tango::core {

/// Serialize one knowledge record (append-friendly).
void write_knowledge(std::ostream& out, const std::string& key,
                     const SwitchKnowledge& knowledge);

/// Parse every record in the stream; returns records keyed by name.
Result<std::map<std::string, SwitchKnowledge>> read_knowledge(std::istream& in);

/// File-level convenience wrappers.
bool save_knowledge_file(const std::string& path,
                         const std::map<std::string, SwitchKnowledge>& records);
Result<std::map<std::string, SwitchKnowledge>> load_knowledge_file(
    const std::string& path);

}  // namespace tango::core
