#include "tango/pattern.h"

namespace tango::core {

void PatternDb::put(TangoPattern pattern) {
  patterns_[pattern.name] = std::move(pattern);
}

const TangoPattern* PatternDb::find(const std::string& name) const {
  const auto it = patterns_.find(name);
  return it == patterns_.end() ? nullptr : &it->second;
}

std::vector<std::string> PatternDb::names() const {
  std::vector<std::string> out;
  out.reserve(patterns_.size());
  for (const auto& [name, _] : patterns_) out.push_back(name);
  return out;
}

void ScoreDb::record(PatternMeasurement m) {
  db_[{m.switch_id, m.pattern}] = std::move(m);
}

const PatternMeasurement* ScoreDb::find(SwitchId sw,
                                        const std::string& pattern) const {
  const auto it = db_.find({sw, pattern});
  return it == db_.end() ? nullptr : &it->second;
}

std::vector<const PatternMeasurement*> ScoreDb::for_switch(SwitchId sw) const {
  std::vector<const PatternMeasurement*> out;
  for (const auto& [key, m] : db_) {
    if (key.first == sw) out.push_back(&m);
  }
  return out;
}

}  // namespace tango::core
