#include "tango/latency_profiler.h"

#include <algorithm>

namespace tango::core {

double OpCostEstimate::best_add_ms() const {
  return std::min({add_ascending_ms, add_same_priority_ms});
}

bool OpCostEstimate::priority_sensitive(double threshold) const {
  if (add_ascending_ms <= 0) return false;
  return add_descending_ms / add_ascending_ms >= threshold;
}

std::vector<of::FlowMod> make_add_batch(std::uint32_t first_index,
                                        std::size_t count,
                                        const std::vector<std::uint16_t>& priorities) {
  std::vector<of::FlowMod> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(ProbeEngine::probe_add(first_index + static_cast<std::uint32_t>(i),
                                         priorities[i % priorities.size()]));
  }
  return out;
}

std::vector<std::uint16_t> ascending_priorities(std::size_t count,
                                                std::uint16_t base) {
  std::vector<std::uint16_t> out(count);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = static_cast<std::uint16_t>(base + i);
  }
  return out;
}

std::vector<std::uint16_t> descending_priorities(std::size_t count,
                                                 std::uint16_t base) {
  auto out = ascending_priorities(count, base);
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<std::uint16_t> constant_priorities(std::size_t count, std::uint16_t value) {
  return std::vector<std::uint16_t>(count, value);
}

std::vector<std::uint16_t> random_priorities(std::size_t count, Rng& rng,
                                             std::uint16_t base) {
  auto out = ascending_priorities(count, base);
  rng.shuffle(out);
  return out;
}

namespace {

/// Time an add batch against a fresh slate with `preinstalled` random-
/// priority rules in place, then clean up. Returns ms per rule.
double timed_add_run(ProbeEngine& probe, const LatencyProfileConfig& config,
                     const std::vector<std::uint16_t>& priorities, Rng& rng,
                     ScoreDb* scores, const std::string& name) {
  probe.clear_rules();
  auto pre = random_priorities(config.preinstalled, rng, config.preinstall_base);
  probe.timed_batch(make_add_batch(0, config.preinstalled, pre));

  TangoPattern pattern;
  pattern.name = name;
  pattern.commands = make_add_batch(static_cast<std::uint32_t>(config.preinstalled),
                                    config.batch_size, priorities);
  const auto m = probe.apply(pattern, scores);
  return m.install_time.ms() / static_cast<double>(config.batch_size);
}

}  // namespace

OpCostEstimate profile_op_costs(ProbeEngine& probe,
                                const LatencyProfileConfig& config,
                                ScoreDb* scores) {
  OpCostEstimate est;
  Rng rng(config.seed);

  // Priority ranges relative to the preinstalled rules expose the TCAM
  // physics: ascending/same-priority batches append above everything (no
  // shifts); the descending batch sinks below every preinstalled entry
  // (maximal shifts); the random batch lands amid them (about half).
  const auto asc_base =
      static_cast<std::uint16_t>(config.preinstall_base + config.preinstalled + 100);
  const auto desc_base = static_cast<std::uint16_t>(
      config.preinstall_base > config.batch_size + 1
          ? config.preinstall_base - config.batch_size - 1
          : 1);
  est.add_ascending_ms =
      timed_add_run(probe, config,
                    ascending_priorities(config.batch_size, asc_base), rng,
                    scores, "add.ascending");
  est.add_descending_ms =
      timed_add_run(probe, config,
                    descending_priorities(config.batch_size, desc_base), rng,
                    scores, "add.descending");
  est.add_same_priority_ms = timed_add_run(probe, config,
                                           constant_priorities(config.batch_size),
                                           rng, scores, "add.same_priority");
  est.add_random_ms = timed_add_run(
      probe, config,
      random_priorities(config.batch_size, rng, config.preinstall_base), rng,
      scores, "add.random");

  // Modify / delete: against the random-order table left by the last run.
  {
    std::vector<of::FlowMod> mods;
    mods.reserve(config.batch_size);
    for (std::size_t i = 0; i < config.batch_size; ++i) {
      auto fm = ProbeEngine::probe_add(
          static_cast<std::uint32_t>(config.preinstalled + i), 0x8000);
      fm.command = of::FlowModCommand::kModify;
      fm.actions = of::output_to(3);
      mods.push_back(std::move(fm));
    }
    TangoPattern pattern;
    pattern.name = "mod.existing";
    pattern.commands = std::move(mods);
    est.mod_ms = probe.apply(pattern, scores).install_time.ms() /
                 static_cast<double>(config.batch_size);
  }
  {
    std::vector<of::FlowMod> dels;
    dels.reserve(config.batch_size);
    for (std::size_t i = 0; i < config.batch_size; ++i) {
      auto fm = ProbeEngine::probe_add(
          static_cast<std::uint32_t>(config.preinstalled + i), 0x8000);
      fm.command = of::FlowModCommand::kDelete;
      dels.push_back(std::move(fm));
    }
    TangoPattern pattern;
    pattern.name = "del.existing";
    pattern.commands = std::move(dels);
    est.del_ms = probe.apply(pattern, scores).install_time.ms() /
                 static_cast<double>(config.batch_size);
  }

  probe.clear_rules();
  return est;
}

}  // namespace tango::core
