#include "tango/width_inference.h"

#include <cmath>

namespace tango::core {

namespace {

/// Capacity of the fast table for one rule shape: direct fill when the
/// switch rejects at capacity; size inference (latency clustering) when a
/// software table absorbs the overflow.
double shape_capacity(ProbeEngine& probe, RuleShape shape,
                      const WidthInferenceConfig& config, bool* unbounded) {
  probe.clear_rules();
  std::size_t accepted = 0;
  bool rejected = false;
  for (std::size_t i = 0; i < config.max_rules; ++i) {
    if (!probe.install(static_cast<std::uint32_t>(i), 0x8000, shape)) {
      rejected = true;
      break;
    }
    ++accepted;
    // Warm placement, exactly as Algorithm 1's stage 1 does: guarantees no
    // wasted cache slots and that later samples of this flow hit its
    // steady-state tier (OVS microflows in particular).
    probe.network().probe(probe.switch_id(),
                          ProbeEngine::probe_packet(static_cast<std::uint32_t>(i), shape));
  }
  if (rejected) {
    probe.clear_rules();
    *unbounded = false;
    return static_cast<double>(accepted);
  }

  // No rejection: the overflow went somewhere slower. Probe a sample and
  // use the fast-cluster occupancy estimate (Algorithm 1's machinery with
  // this shape's packets).
  Rng rng(config.size.seed);
  std::vector<double> rtts;
  const std::size_t samples = std::min<std::size_t>(config.size.cluster_samples,
                                                    4 * accepted);
  for (std::size_t i = 0; i < samples; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.index(accepted));
    rtts.push_back(
        probe.network().probe(probe.switch_id(), ProbeEngine::probe_packet(f, shape))
            .rtt.ms());
  }
  probe.clear_rules();
  const auto clusters = stats::gap_clusters(rtts);
  if (clusters.size() <= 1) {
    *unbounded = true;  // one band: never crossed a boundary
    return static_cast<double>(accepted);
  }
  *unbounded = false;
  // Fast-band fraction of the sample estimates the fast-table share.
  return static_cast<double>(accepted) *
         static_cast<double>(clusters.front().count) /
         static_cast<double>(rtts.size());
}

bool within(double a, double b, double tol) {
  if (a == 0 || b == 0) return a == b;
  return std::abs(a - b) / std::max(a, b) <= tol;
}

}  // namespace

WidthInferenceResult infer_width(ProbeEngine& probe,
                                 const WidthInferenceConfig& config) {
  WidthInferenceResult result;
  bool unbounded_l2 = false, unbounded_l3 = false, unbounded_wide = false;
  result.capacity_l2 = shape_capacity(probe, RuleShape::kL2Only, config, &unbounded_l2);
  result.capacity_l3 = shape_capacity(probe, RuleShape::kL3Only, config, &unbounded_l3);
  result.capacity_wide =
      shape_capacity(probe, RuleShape::kL2AndL3, config, &unbounded_wide);

  if (unbounded_l2 && unbounded_l3 && unbounded_wide) {
    result.unbounded = true;
    return result;
  }

  const double narrow = std::max(result.capacity_l2, result.capacity_l3);
  if (result.capacity_wide == 0 || unbounded_wide) {
    // Wide entries rejected outright — or never reached the fast table at
    // all (a software tier silently absorbed every one of them, so their
    // RTTs formed a single slow band): the hardware packs one layer per
    // slot.
    result.mode = tables::TcamMode::kSingleWide;
    result.capacity_wide = 0;
  } else if (within(result.capacity_wide, narrow, config.tolerance)) {
    // Every shape costs the same -> all slots are pre-paired.
    result.mode = tables::TcamMode::kDoubleWide;
  } else if (within(result.capacity_wide, narrow / 2, config.tolerance)) {
    result.mode = tables::TcamMode::kAdaptive;
  } else {
    // Between the two: closest match wins.
    result.mode = std::abs(result.capacity_wide - narrow) <
                          std::abs(result.capacity_wide - narrow / 2)
                      ? tables::TcamMode::kDoubleWide
                      : tables::TcamMode::kAdaptive;
  }
  return result;
}

}  // namespace tango::core
