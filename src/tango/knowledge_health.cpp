#include "tango/knowledge_health.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace tango::core {

std::string to_string(PropertyKind kind) {
  switch (kind) {
    case PropertyKind::kSizes: return "sizes";
    case PropertyKind::kPolicy: return "policy";
    case PropertyKind::kCosts: return "costs";
    case PropertyKind::kWidth: return "width";
  }
  return "?";
}

void KnowledgeHealth::count(const char* name, std::uint64_t n) {
  if (telemetry_ != nullptr) telemetry_->metrics.counter(name).inc(n);
}

SwitchHealth& KnowledgeHealth::entry(SwitchId id) { return switches_[id]; }

void KnowledgeHealth::track(SwitchId id, SimTime now) {
  SwitchHealth fresh;
  for (auto& p : fresh.props) p.refreshed_at = now;
  // Keep lifetime counters across re-tracking (refresh() re-learns).
  if (const auto it = switches_.find(id); it != switches_.end()) {
    const SwitchHealth& old = it->second;
    fresh.cost_mispredictions = old.cost_mispredictions;
    fresh.readback_mismatches = old.readback_mismatches;
    fresh.verifier_violations = old.verifier_violations;
    fresh.spot_checks = old.spot_checks;
    fresh.drift_confirmed = old.drift_confirmed;
    fresh.reinferences = old.reinferences;
    fresh.quarantines = old.quarantines;
    fresh.quarantine_lifts = old.quarantine_lifts;
  }
  switches_[id] = fresh;
}

void KnowledgeHealth::forget(SwitchId id) { switches_.erase(id); }

void KnowledgeHealth::restore(SwitchId id, double trust, bool quarantined,
                              SimTime now) {
  SwitchHealth fresh;
  for (auto& p : fresh.props) p.refreshed_at = now;
  fresh.trust = trust;
  switches_[id] = fresh;
  auto& h = switches_[id];
  if (quarantined) {
    // The snapshot's verdict wins even if the raw trust would not trip the
    // threshold here (the primary may have quarantined on confidence).
    h.trust = std::min(h.trust, config_.quarantine_threshold - 0.01);
  }
  update_quarantine(h, id);
}

void KnowledgeHealth::suspect(SwitchId id) {
  auto& h = entry(id);
  h.trust = std::min(h.trust, config_.quarantine_threshold - 0.01);
  update_quarantine(h, id);
}

void KnowledgeHealth::penalize(SwitchHealth& h, SwitchId id, PropertyKind kind,
                               double amount) {
  auto& p = h.prop(kind);
  ++p.signals;
  p.confidence = std::max(0.0, p.confidence - amount);
  h.trust = std::max(0.0, h.trust - amount);
  update_quarantine(h, id);
}

void KnowledgeHealth::update_quarantine(SwitchHealth& h, SwitchId id) {
  double min_conf = 1.0;
  for (const auto& p : h.props) min_conf = std::min(min_conf, p.confidence);
  const bool should =
      h.trust < config_.quarantine_threshold ||
      min_conf < config_.quarantine_threshold;
  if (should && !h.quarantined) {
    h.quarantined = true;
    ++h.quarantines;
    count("health.quarantines");
    log::warn("health: switch " + std::to_string(id) +
              " quarantined (trust " + std::to_string(h.trust) + ")");
  } else if (!should && h.quarantined) {
    h.quarantined = false;
    ++h.quarantine_lifts;
    count("health.quarantine_lifts");
    log::info("health: switch " + std::to_string(id) + " quarantine lifted");
  }
}

void KnowledgeHealth::on_cost_observation(SwitchId id, double actual_ms,
                                          double predicted_ms, SimTime now) {
  (void)now;
  if (switches_.count(id) == 0) return;  // not a tracked switch
  if (predicted_ms <= 0.0) return;
  const double rel = std::abs(actual_ms / predicted_ms - 1.0);
  if (rel <= config_.misprediction_tolerance) return;
  auto& h = entry(id);
  ++h.cost_mispredictions;
  count("health.cost_mispredictions");
  penalize(h, id, PropertyKind::kCosts, config_.signal_penalty);
}

void KnowledgeHealth::on_readback_mismatch(SwitchId id, std::size_t mismatches,
                                           SimTime now) {
  (void)now;
  if (mismatches == 0 || switches_.count(id) == 0) return;
  auto& h = entry(id);
  h.readback_mismatches += mismatches;
  count("health.readback_mismatches", mismatches);
  // A readback mismatch is direct evidence the switch lies about installs:
  // it discredits trust (not a knowledge property), hard.
  h.trust = std::max(0.0, h.trust - config_.signal_penalty *
                                        static_cast<double>(mismatches));
  update_quarantine(h, id);
}

void KnowledgeHealth::on_verifier_violation(SwitchId id, SimTime now) {
  (void)now;
  if (switches_.count(id) == 0) return;
  auto& h = entry(id);
  ++h.verifier_violations;
  count("health.verifier_violations");
  h.trust = std::max(0.0, h.trust - config_.signal_penalty);
  update_quarantine(h, id);
}

void KnowledgeHealth::on_clean_verified_commit(SwitchId id, SimTime now) {
  (void)now;
  if (switches_.count(id) == 0) return;
  auto& h = entry(id);
  count("health.clean_verified_commits");
  h.trust = std::min(1.0, h.trust + config_.clean_commit_recovery);
  update_quarantine(h, id);
}

bool KnowledgeHealth::needs_probe(SwitchId id) const {
  const auto it = switches_.find(id);
  if (it == switches_.end()) return false;
  return it->second.prop(PropertyKind::kCosts).signals >=
         config_.escalate_after;
}

bool KnowledgeHealth::record_spot_check(SwitchId id, double drift, SimTime now) {
  (void)now;
  if (switches_.count(id) == 0) return false;
  auto& h = entry(id);
  ++h.spot_checks;
  count("health.spot_checks");
  auto& costs = h.prop(PropertyKind::kCosts);
  if (std::abs(drift) > config_.spot_check_tolerance) {
    ++h.drift_confirmed;
    count("health.drift_confirmed");
    costs.confidence = 0.0;  // forces quarantine until re-inference
    update_quarantine(h, id);
    log::warn("health: switch " + std::to_string(id) +
              " drift confirmed by spot check (" + std::to_string(drift) + ")");
    return true;
  }
  // The accumulated signals were noise: absolve the property.
  costs.signals = 0;
  costs.confidence = 1.0;
  update_quarantine(h, id);
  return false;
}

void KnowledgeHealth::mark_reinferred(SwitchId id, PropertyKind kind,
                                      SimTime now) {
  if (switches_.count(id) == 0) return;
  auto& h = entry(id);
  ++h.reinferences;
  count("health.reinferences");
  auto& p = h.prop(kind);
  p.confidence = 1.0;
  p.signals = 0;
  p.refreshed_at = now;
  // Fresh knowledge restores faith in the switch's behaviour too.
  h.trust = std::max(h.trust, 1.0 - config_.signal_penalty);
  update_quarantine(h, id);
}

bool KnowledgeHealth::quarantined(SwitchId id) const {
  const auto it = switches_.find(id);
  return it != switches_.end() && it->second.quarantined;
}

double KnowledgeHealth::confidence(SwitchId id, PropertyKind kind) const {
  const auto it = switches_.find(id);
  if (it == switches_.end()) return 0.0;
  return it->second.prop(kind).confidence;
}

const SwitchHealth* KnowledgeHealth::health(SwitchId id) const {
  const auto it = switches_.find(id);
  return it != switches_.end() ? &it->second : nullptr;
}

}  // namespace tango::core
