#include "tango/size_inference.h"

#include <algorithm>
#include <cmath>

#include "stats/estimators.h"

namespace tango::core {

SizeInferenceResult infer_sizes(ProbeEngine& probe,
                                const SizeInferenceConfig& config) {
  SizeInferenceResult result;
  Rng rng(config.seed);
  const auto stats_before = probe.overhead();
  const std::size_t losses_before =
      probe.lost_probes() + probe.abandoned_probes();

  // --- Stage 1: doubling installs, one warming probe per rule -------------
  bool cache_full = false;
  std::size_t x = 1;
  std::size_t installed = 0;
  while (!cache_full && installed < config.max_rules) {
    const std::size_t target = std::min(x, config.max_rules);
    for (std::size_t i = installed; i < target; ++i) {
      if (!probe.install(static_cast<std::uint32_t>(i), config.priority)) {
        cache_full = true;
        break;
      }
      ++installed;
      probe.probe_flow(static_cast<std::uint32_t>(i));
    }
    x *= 2;
  }
  result.installed = installed;
  result.hit_rule_cap = !cache_full;
  if (installed == 0) return result;
  const std::size_t m = installed;

  // --- Stage 2: cluster sampled RTTs into layers ---------------------------
  std::vector<double> rtts_ms;
  rtts_ms.reserve(config.cluster_samples);
  for (std::size_t i = 0; i < config.cluster_samples; ++i) {
    const auto f = static_cast<std::uint32_t>(rng.index(m));
    rtts_ms.push_back(probe.probe_flow(f).ms());
  }
  result.clusters = stats::gap_clusters(rtts_ms);
  const std::size_t n_levels = result.clusters.size();

  // Every probe of a uniformly random installed flow is an iid draw whose
  // layer is Bernoulli(n_level / m): pool stage-2 samples and every stage-3
  // probe into per-layer counts for a lower-variance final estimate (the
  // per-trial run lengths still drive the paper's NB-MLE, kept as a
  // cross-check in `runs`).
  std::vector<std::size_t> level_counts(n_levels, 0);
  std::size_t pooled_probes = 0;
  for (double rtt : rtts_ms) {
    const std::size_t level = stats::classify(result.clusters, rtt);
    if (level < n_levels) {
      ++level_counts[level];
      ++pooled_probes;
    }
  }

  // --- Stage 3: per-layer Negative-Binomial run sampling -------------------
  result.layer_sizes.assign(n_levels, 0.0);
  std::vector<double> nb_only(n_levels, 0.0);
  for (std::size_t level = 0; level + 1 < n_levels; ++level) {
    std::vector<std::size_t> runs;
    runs.reserve(config.trials_per_level);
    for (std::size_t trial = 0; trial < config.trials_per_level; ++trial) {
      std::size_t j = 0;
      auto f = static_cast<std::uint32_t>(rng.index(m));
      double rtt = probe.probe_flow(f).ms();
      {
        const std::size_t at = stats::classify(result.clusters, rtt);
        if (at < n_levels) {
          ++level_counts[at];
          ++pooled_probes;
        }
      }
      while (stats::classify(result.clusters, rtt) == level && j < m) {
        ++j;
        f = static_cast<std::uint32_t>(rng.index(m));
        rtt = probe.probe_flow(f).ms();
        const std::size_t at = stats::classify(result.clusters, rtt);
        if (at < n_levels) {
          ++level_counts[at];
          ++pooled_probes;
        }
      }
      if (j == m) break;  // practically everything lives in this layer
      runs.push_back(j);
    }
    nb_only[level] = stats::estimate_layer_size(m, runs);
  }

  double accounted = 0;
  for (std::size_t level = 0; level + 1 < n_levels; ++level) {
    if (config.pooled_estimator) {
      result.layer_sizes[level] =
          pooled_probes == 0
              ? 0.0
              : static_cast<double>(m) *
                    static_cast<double>(level_counts[level]) /
                    static_cast<double>(pooled_probes);
    } else {
      result.layer_sizes[level] = nb_only[level];
    }
    accounted += result.layer_sizes[level];
  }
  if (n_levels > 0) {
    // Slowest layer: the remainder. Exact when stage 1 hit a rejection.
    result.layer_sizes[n_levels - 1] =
        std::max(0.0, static_cast<double>(m) - accounted);
  }

  const auto stats_after = probe.overhead();
  result.messages_used =
      stats_after.messages_to_switch - stats_before.messages_to_switch;
  result.probe_packets = stats_after.packets_out - stats_before.packets_out;
  result.probe_losses =
      probe.lost_probes() + probe.abandoned_probes() - losses_before;

  // 95% CI per layer from the pooled Bernoulli estimate, inflated by
  // sqrt(1 + loss_rate) when the channel lost probes along the way.
  result.layer_ci_halfwidth.assign(n_levels, 0.0);
  if (pooled_probes > 0) {
    const double total_attempts =
        static_cast<double>(pooled_probes + result.probe_losses);
    const double loss_rate =
        total_attempts > 0 ? static_cast<double>(result.probe_losses) / total_attempts
                           : 0.0;
    const double widen = std::sqrt(1.0 + loss_rate);
    double others = 0.0;
    for (std::size_t level = 0; level + 1 < n_levels; ++level) {
      const double p = static_cast<double>(level_counts[level]) /
                       static_cast<double>(pooled_probes);
      const double se = std::sqrt(p * (1.0 - p) /
                                  static_cast<double>(pooled_probes));
      result.layer_ci_halfwidth[level] =
          1.96 * static_cast<double>(m) * se * widen;
      others += result.layer_ci_halfwidth[level];
    }
    // The remainder layer inherits the combined uncertainty of the others.
    result.layer_ci_halfwidth[n_levels - 1] = others;
  }
  return result;
}

}  // namespace tango::core
