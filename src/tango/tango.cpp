#include "tango/tango.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tango::core {

std::size_t SwitchKnowledge::fast_table_size() const {
  if (sizes.layer_sizes.empty()) return 0;
  if (sizes.clusters.size() == 1 && sizes.hit_rule_cap) return 0;  // unbounded
  return static_cast<std::size_t>(std::llround(sizes.layer_sizes.front()));
}

std::string SwitchKnowledge::summary() const {
  std::string out = name + ": layers=[";
  for (std::size_t i = 0; i < sizes.layer_sizes.size(); ++i) {
    if (i > 0) out += ", ";
    const bool last_unbounded = sizes.hit_rule_cap && i + 1 == sizes.layer_sizes.size();
    if (last_unbounded) {
      out += ">" + std::to_string(static_cast<long long>(sizes.layer_sizes[i]));
    } else {
      out += std::to_string(static_cast<long long>(std::llround(sizes.layer_sizes[i])));
    }
  }
  out += "]";
  if (policy.has_value()) {
    out += " policy={" + policy->policy.describe() + "}";
  }
  if (width.has_value() && !width->unbounded) {
    out += " tcam=" + tables::to_string(width->mode);
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                " add[asc %.3f, desc %.3f, same %.3f, rand %.3f] mod %.3f del "
                "%.3f (ms/rule)",
                costs.add_ascending_ms, costs.add_descending_ms,
                costs.add_same_priority_ms, costs.add_random_ms, costs.mod_ms,
                costs.del_ms);
  out += buf;
  return out;
}

const SwitchKnowledge& TangoController::learn(SwitchId id,
                                              const LearnOptions& options) {
  if (const auto it = knowledge_.find(id); it != knowledge_.end()) {
    return it->second;
  }
  SwitchKnowledge know;
  know.switch_id = id;
  know.name = network_.sw(id).profile().name;

  ProbeEngine probe(network_, id);
  probe.clear_rules();
  know.sizes = infer_sizes(probe, options.size);
  probe.clear_rules();

  const std::size_t fast = [&]() -> std::size_t {
    if (know.sizes.layer_sizes.empty()) return 0;
    if (know.sizes.clusters.size() <= 1) return 0;
    return static_cast<std::size_t>(std::llround(know.sizes.layer_sizes.front()));
  }();
  if (options.infer_policy && fast > 0 && fast <= options.max_policy_cache_size) {
    PolicyInferenceConfig pc;
    pc.cache_size = fast;
    know.policy = infer_policy(probe, pc);
  }
  probe.clear_rules();

  // Size the profiling batches to the switch: the probe workload must fit
  // inside a bounded table or every measurement would just be rejections.
  auto latency_config = options.latency;
  std::size_t total_capacity = 0;
  if (!know.sizes.hit_rule_cap) {
    total_capacity = know.sizes.installed;
  }
  if (total_capacity > 0) {
    latency_config.preinstalled =
        std::min(latency_config.preinstalled, total_capacity / 2);
    latency_config.batch_size =
        std::min(latency_config.batch_size,
                 std::max<std::size_t>(1, total_capacity / 3));
  }
  know.costs = profile_op_costs(probe, latency_config, &scores_);
  probe.clear_rules();

  if (options.infer_width) {
    WidthInferenceConfig wc;
    wc.size = options.size;
    wc.max_rules = std::max<std::size_t>(options.size.max_rules, 256);
    know.width = infer_width(probe, wc);
    probe.clear_rules();
  }

  auto [it, _] = knowledge_.emplace(id, std::move(know));
  return it->second;
}

double TangoController::spot_check(SwitchId id, std::size_t batch) {
  const auto it = knowledge_.find(id);
  if (it == knowledge_.end()) return -1.0;
  const double learned_ms = it->second.costs.add_ascending_ms;
  if (learned_ms <= 0) return -1.0;

  ProbeEngine probe(network_, id);
  // A fresh high-priority band so the batch appends (ascending regime) and
  // is trivially removable afterwards.
  const auto priorities = ascending_priorities(batch, 0x7000);
  const std::uint32_t first = 0x00f00000;  // away from workload flow ids
  const auto elapsed = probe.timed_batch(make_add_batch(first, batch, priorities));
  // Clean up the probe rules only.
  std::vector<of::FlowMod> dels;
  for (std::size_t i = 0; i < batch; ++i) {
    auto fm = ProbeEngine::probe_add(first + static_cast<std::uint32_t>(i));
    fm.command = of::FlowModCommand::kDelete;
    dels.push_back(std::move(fm));
  }
  probe.timed_batch(dels);

  const double measured_ms = elapsed.ms() / static_cast<double>(batch);
  return std::abs(measured_ms / learned_ms - 1.0);
}

const SwitchKnowledge& TangoController::refresh(SwitchId id,
                                                const LearnOptions& options) {
  knowledge_.erase(id);
  return learn(id, options);
}

const SwitchKnowledge* TangoController::knowledge(SwitchId id) const {
  const auto it = knowledge_.find(id);
  return it == knowledge_.end() ? nullptr : &it->second;
}

sched::UpdateTransaction TangoController::begin_update(
    sched::RequestDag dag, sched::TransactionOptions options) {
  for (const auto& [id, know] : knowledge_) {
    options.exec.cost_hints.emplace(id, know.costs);
  }
  return sched::UpdateTransaction(network_, std::move(dag), std::move(options));
}

}  // namespace tango::core
