#include "tango/tango.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tango::core {

std::size_t SwitchKnowledge::fast_table_size() const {
  if (sizes.layer_sizes.empty()) return 0;
  if (sizes.clusters.size() == 1 && sizes.hit_rule_cap) return 0;  // unbounded
  return static_cast<std::size_t>(std::llround(sizes.layer_sizes.front()));
}

std::string SwitchKnowledge::summary() const {
  std::string out = name + ": layers=[";
  for (std::size_t i = 0; i < sizes.layer_sizes.size(); ++i) {
    if (i > 0) out += ", ";
    const bool last_unbounded = sizes.hit_rule_cap && i + 1 == sizes.layer_sizes.size();
    if (last_unbounded) {
      out += ">" + std::to_string(static_cast<long long>(sizes.layer_sizes[i]));
    } else {
      out += std::to_string(static_cast<long long>(std::llround(sizes.layer_sizes[i])));
    }
  }
  out += "]";
  if (policy.has_value()) {
    out += " policy={" + policy->policy.describe() + "}";
  }
  if (width.has_value() && !width->unbounded) {
    out += " tcam=" + tables::to_string(width->mode);
  }
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                " add[asc %.3f, desc %.3f, same %.3f, rand %.3f] mod %.3f del "
                "%.3f (ms/rule)",
                costs.add_ascending_ms, costs.add_descending_ms,
                costs.add_same_priority_ms, costs.add_random_ms, costs.mod_ms,
                costs.del_ms);
  out += buf;
  return out;
}

const SwitchKnowledge& TangoController::learn(SwitchId id,
                                              const LearnOptions& options) {
  if (const auto it = knowledge_.find(id); it != knowledge_.end()) {
    return it->second;
  }
  SwitchKnowledge know;
  know.switch_id = id;
  know.name = network_.sw(id).profile().name;

  ProbeEngine probe(network_, id);
  probe.clear_rules();
  know.sizes = infer_sizes(probe, options.size);
  probe.clear_rules();

  const std::size_t fast = [&]() -> std::size_t {
    if (know.sizes.layer_sizes.empty()) return 0;
    if (know.sizes.clusters.size() <= 1) return 0;
    return static_cast<std::size_t>(std::llround(know.sizes.layer_sizes.front()));
  }();
  if (options.infer_policy && fast > 0 && fast <= options.max_policy_cache_size) {
    PolicyInferenceConfig pc;
    pc.cache_size = fast;
    know.policy = infer_policy(probe, pc);
  }
  probe.clear_rules();

  // Size the profiling batches to the switch: the probe workload must fit
  // inside a bounded table or every measurement would just be rejections.
  auto latency_config = options.latency;
  std::size_t total_capacity = 0;
  if (!know.sizes.hit_rule_cap) {
    total_capacity = know.sizes.installed;
  }
  if (total_capacity > 0) {
    latency_config.preinstalled =
        std::min(latency_config.preinstalled, total_capacity / 2);
    latency_config.batch_size =
        std::min(latency_config.batch_size,
                 std::max<std::size_t>(1, total_capacity / 3));
  }
  know.costs = profile_op_costs(probe, latency_config, &scores_);
  probe.clear_rules();

  if (options.infer_width) {
    WidthInferenceConfig wc;
    wc.size = options.size;
    wc.max_rules = std::max<std::size_t>(options.size.max_rules, 256);
    know.width = infer_width(probe, wc);
    probe.clear_rules();
  }

  auto [it, _] = knowledge_.emplace(id, std::move(know));
  health_.set_telemetry(network_.telemetry());
  health_.track(id, network_.now());
  return it->second;
}

const SwitchKnowledge& TangoController::adopt(SwitchKnowledge know) {
  const SwitchId id = know.switch_id;
  auto [it, _] = knowledge_.insert_or_assign(id, std::move(know));
  health_.set_telemetry(network_.telemetry());
  health_.track(id, network_.now());
  return it->second;
}

const SwitchKnowledge& TangoController::reinfer(SwitchId id, PropertyKind kind,
                                                const LearnOptions& options) {
  const auto it = knowledge_.find(id);
  if (it == knowledge_.end()) return learn(id, options);
  SwitchKnowledge& know = it->second;

  ProbeEngine probe(network_, id);
  probe.clear_rules();
  switch (kind) {
    case PropertyKind::kSizes:
      know.sizes = infer_sizes(probe, options.size);
      break;
    case PropertyKind::kPolicy: {
      const std::size_t fast = [&]() -> std::size_t {
        if (know.sizes.layer_sizes.empty()) return 0;
        if (know.sizes.clusters.size() <= 1) return 0;
        return static_cast<std::size_t>(
            std::llround(know.sizes.layer_sizes.front()));
      }();
      if (fast > 0 && fast <= options.max_policy_cache_size) {
        PolicyInferenceConfig pc;
        pc.cache_size = fast;
        know.policy = infer_policy(probe, pc);
      }
      break;
    }
    case PropertyKind::kCosts: {
      auto latency_config = options.latency;
      std::size_t total_capacity = 0;
      if (!know.sizes.hit_rule_cap) total_capacity = know.sizes.installed;
      if (total_capacity > 0) {
        latency_config.preinstalled =
            std::min(latency_config.preinstalled, total_capacity / 2);
        latency_config.batch_size =
            std::min(latency_config.batch_size,
                     std::max<std::size_t>(1, total_capacity / 3));
      }
      know.costs = profile_op_costs(probe, latency_config, &scores_);
      break;
    }
    case PropertyKind::kWidth: {
      WidthInferenceConfig wc;
      wc.size = options.size;
      wc.max_rules = std::max<std::size_t>(options.size.max_rules, 256);
      know.width = infer_width(probe, wc);
      break;
    }
  }
  probe.clear_rules();
  health_.mark_reinferred(id, kind, network_.now());
  return know;
}

std::vector<SentinelAction> TangoController::run_sentinel(
    const LearnOptions& options, bool force_probe) {
  health_.set_telemetry(network_.telemetry());
  std::vector<SentinelAction> actions;
  for (auto& [id, know] : knowledge_) {
    if (!force_probe && !health_.needs_probe(id)) continue;
    SentinelAction act;
    act.switch_id = id;
    act.drift = spot_check(id, health_.config().spot_check_batch);
    if (act.drift < 0) {
      // No usable learned cost to compare against; nothing to record.
      act.quarantined = health_.quarantined(id);
      actions.push_back(act);
      continue;
    }
    act.probed = true;
    act.confirmed = health_.record_spot_check(id, act.drift, network_.now());
    if (act.confirmed) {
      reinfer(id, PropertyKind::kCosts, options);
      act.reinferred = true;
    }
    act.quarantined = health_.quarantined(id);
    actions.push_back(act);
  }
  return actions;
}

double TangoController::spot_check(SwitchId id, std::size_t batch) {
  const auto it = knowledge_.find(id);
  if (it == knowledge_.end()) return -1.0;
  const double learned_ms = it->second.costs.add_ascending_ms;
  if (learned_ms <= 0) return -1.0;

  ProbeEngine probe(network_, id);
  // A fresh high-priority band so the batch appends (ascending regime) and
  // is trivially removable afterwards.
  const auto priorities = ascending_priorities(batch, 0x7000);
  const std::uint32_t first = 0x00f00000;  // away from workload flow ids
  const auto elapsed = probe.timed_batch(make_add_batch(first, batch, priorities));
  // Clean up the probe rules only.
  std::vector<of::FlowMod> dels;
  for (std::size_t i = 0; i < batch; ++i) {
    auto fm = ProbeEngine::probe_add(first + static_cast<std::uint32_t>(i));
    fm.command = of::FlowModCommand::kDelete;
    dels.push_back(std::move(fm));
  }
  probe.timed_batch(dels);

  // The delete batch travels over the same lossy channel as everything
  // else: under an active fault injector some deletes can vanish after the
  // barrier reply made it back, leaking probe rules into the workload's
  // table. Verify by readback and re-issue deletes for survivors.
  std::map<std::string, std::uint32_t> expect;
  for (std::size_t i = 0; i < batch; ++i) {
    const auto idx = first + static_cast<std::uint32_t>(i);
    expect.emplace(sched::rule_key(ProbeEngine::probe_match(idx), priorities[i]),
                   idx);
  }
  for (std::size_t round = 0; round < 8 && !expect.empty(); ++round) {
    const auto reply = network_.try_flow_stats(id, of::Match::any(), millis(200));
    if (!reply.has_value()) continue;  // readback lost; try again
    std::map<std::string, std::uint32_t> survivors;
    std::vector<of::FlowMod> redel;
    for (const auto& entry : reply->entries) {
      const auto hit = expect.find(sched::rule_key(entry.match, entry.priority));
      if (hit == expect.end()) continue;
      survivors.insert(*hit);
      auto fm = ProbeEngine::probe_add(hit->second);
      fm.command = of::FlowModCommand::kDelete;
      redel.push_back(std::move(fm));
    }
    expect = std::move(survivors);  // absent from readback = already gone
    if (!expect.empty()) probe.timed_batch(redel);
  }

  const double measured_ms = elapsed.ms() / static_cast<double>(batch);
  return std::abs(measured_ms / learned_ms - 1.0);
}

const SwitchKnowledge& TangoController::refresh(SwitchId id,
                                                const LearnOptions& options) {
  knowledge_.erase(id);
  return learn(id, options);
}

const SwitchKnowledge* TangoController::knowledge(SwitchId id) const {
  const auto it = knowledge_.find(id);
  return it == knowledge_.end() ? nullptr : &it->second;
}

sched::UpdateTransaction TangoController::begin_update(
    sched::RequestDag dag, sched::TransactionOptions options) {
  health_.set_telemetry(network_.telemetry());
  const auto& hc = health_.config();
  for (const auto& [id, know] : knowledge_) {
    if (health_.quarantined(id)) {
      // Conservative fallback for a switch we no longer trust: inflate the
      // cost estimates (schedulers pace themselves accordingly) and require
      // a readback-verified commit. Overrides caller-supplied hints — a
      // quarantine is not negotiable.
      OpCostEstimate conservative = know.costs;
      conservative.add_ascending_ms *= hc.conservative_factor;
      conservative.add_descending_ms *= hc.conservative_factor;
      conservative.add_same_priority_ms *= hc.conservative_factor;
      conservative.add_random_ms *= hc.conservative_factor;
      conservative.mod_ms *= hc.conservative_factor;
      conservative.del_ms *= hc.conservative_factor;
      options.exec.cost_hints.insert_or_assign(id, conservative);
      options.readback_verify.insert(id);
    } else {
      options.exec.cost_hints.emplace(id, know.costs);
    }
  }

  // Chain the executor's cost observations into the health layer. The
  // predicted value fed to health is recomputed from the TRUE learned
  // costs, not the (possibly inflated) hints the executor saw — otherwise
  // a quarantined switch behaving normally would look like it drifted.
  auto user_obs = options.exec.on_cost_observation;
  options.exec.on_cost_observation =
      [this, user_obs](SwitchId loc, sched::RequestType type, double actual_ms,
                       double predicted_ms) {
        double true_predicted = predicted_ms;
        if (const auto it = knowledge_.find(loc); it != knowledge_.end()) {
          switch (type) {
            case sched::RequestType::kAdd:
              true_predicted = it->second.costs.add_ascending_ms;
              break;
            case sched::RequestType::kMod:
              true_predicted = it->second.costs.mod_ms;
              break;
            case sched::RequestType::kDel:
              true_predicted = it->second.costs.del_ms;
              break;
          }
        }
        health_.on_cost_observation(loc, actual_ms, true_predicted,
                                    network_.now());
        if (user_obs) user_obs(loc, type, actual_ms, predicted_ms);
      };

  // Chain the final report: readback mismatches discredit, clean verified
  // commits rehabilitate.
  auto user_report = options.on_report;
  options.on_report = [this, user_report, verified = options.readback_verify](
                          const sched::TransactionReport& rep) {
    for (const auto& [sw, n] : rep.readback_mismatches) {
      health_.on_readback_mismatch(sw, n, network_.now());
    }
    if (rep.committed) {
      for (const SwitchId sw : verified) {
        if (rep.readback_mismatches.count(sw) == 0 &&
            rep.unreconciled.count(sw) == 0) {
          health_.on_clean_verified_commit(sw, network_.now());
        }
      }
    }
    if (user_report) user_report(rep);
  };

  return sched::UpdateTransaction(network_, std::move(dag), std::move(options));
}

std::unique_ptr<sched::UpdateTransaction>
TangoController::begin_update_concurrent(sched::RequestDag dag,
                                         sched::TransactionOptions options) {
  options.scope_to_footprint = true;
  return std::make_unique<sched::UpdateTransaction>(
      begin_update(std::move(dag), std::move(options)));
}

}  // namespace tango::core
