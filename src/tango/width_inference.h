// TCAM width / operating-mode inference — an extension Tango pattern.
//
// The paper's conclusion lists "infer other switch capabilities" as future
// work; the clearest gap its own Table 1 exposes is the TCAM *mode*: a
// fixed pool of slots holds 1-slot entries in single-wide mode, charges 2
// slots for everything in double-wide mode, and charges by entry shape in
// adaptive mode (Switch #3). The mode determines how many rules of each
// shape fit, so a scheduler placing L2+L3 rules must know it.
//
// Pattern: fill the switch with L2-only rules (count rejections), then
// L3-only, then L2+L3, clearing in between. Classification:
//
//   wide rules rejected outright            -> single-wide
//   wide capacity == narrow capacity        -> double-wide
//   wide capacity ~= half narrow capacity   -> adaptive
//
// Switches that never reject (software-backed) report their fast-table
// capacity from per-shape size inference instead.
#pragma once

#include <cstddef>

#include "tables/tcam.h"
#include "tango/probe_engine.h"
#include "tango/size_inference.h"

namespace tango::core {

struct WidthInferenceConfig {
  /// Stop filling at this many rules (unbounded-table guard).
  std::size_t max_rules = 6000;
  /// Relative tolerance when comparing per-shape capacities.
  double tolerance = 0.15;
  /// Size-inference settings for software-backed switches.
  SizeInferenceConfig size;
};

struct WidthInferenceResult {
  tables::TcamMode mode = tables::TcamMode::kSingleWide;
  /// Fast-table capacity per shape (rules). 0 = shape unsupported.
  double capacity_l2 = 0;
  double capacity_l3 = 0;
  double capacity_wide = 0;
  /// True when no shape ever hit a boundary (pure software switch); mode
  /// is then meaningless.
  bool unbounded = false;
};

WidthInferenceResult infer_width(ProbeEngine& probe,
                                 const WidthInferenceConfig& config = {});

}  // namespace tango::core
