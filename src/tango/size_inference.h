// Flow-table size inference — the paper's Algorithm 1 (§5.2).
//
// Stage 1: insert probe rules in doubling batches, sending one probe packet
//          per inserted rule (so the caches contain no wasted slots), until
//          the switch rejects an insert or the configured cap is reached.
// Stage 2: probe a sample of installed rules and cluster the RTTs — one
//          cluster per flow-table layer.
// Stage 3: for each layer except the slowest, repeatedly sample a random
//          rule and count consecutive probes that stay inside the layer's
//          RTT cluster. The run lengths are Negative-Binomial; the MLE
//          p_hat = sum(X)/(k + sum(X)) gives layer size n_hat = m * p_hat.
//
// The procedure is asymptotically optimal: O(n) rule installs in
// O(log n) batches and O(n) probe packets.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "stats/cluster.h"
#include "tango/probe_engine.h"

namespace tango::core {

struct SizeInferenceConfig {
  /// k: sampling trials per layer in stage 3.
  std::size_t trials_per_level = 200;
  /// Cap on installed rules for switches that never reject (software
  /// tables are "virtually unlimited"; we stop probing at this point).
  std::size_t max_rules = 8192;
  /// Stage-2 sample size (probes clustered into latency bands).
  std::size_t cluster_samples = 1500;
  /// Install rules at this fixed priority (constant priority keeps the
  /// probing itself cheap and avoids biasing priority-sensitive caches).
  std::uint16_t priority = 0x8000;
  /// true (default): pool every probe observation into per-layer counts —
  /// a lower-variance refinement of the same statistic. false: use the
  /// paper's literal per-trial Negative-Binomial MLE only (compare both
  /// with bench_ablation_estimator).
  bool pooled_estimator = true;
  std::uint64_t seed = 42;
};

struct SizeInferenceResult {
  /// m: rules successfully installed.
  std::size_t installed = 0;
  /// True when stage 1 ended at max_rules rather than a rejection —
  /// i.e. the deepest table is effectively unbounded.
  bool hit_rule_cap = false;
  /// RTT clusters, fastest first (one per flow-table layer observed).
  std::vector<stats::Cluster> clusters;
  /// Estimated layer sizes, fastest first. The slowest layer's size is
  /// reported as the remainder m - sum(previous) (exact when the switch
  /// rejected at capacity; "unbounded" when hit_rule_cap).
  std::vector<double> layer_sizes;
  /// Probing overhead: messages sent to the switch during inference.
  std::uint64_t messages_used = 0;
  std::uint64_t probe_packets = 0;
  /// Probe packets lost (and re-sent by the engine) during inference.
  /// Non-zero only under fault injection.
  std::size_t probe_losses = 0;
  /// 95% confidence half-width per layer estimate (same indexing as
  /// layer_sizes; the slowest layer, being a remainder, gets the sum of
  /// the others). Widened by sqrt(1 + loss_rate) when probes were lost:
  /// re-sent probes are fresh iid draws, but loss correlates weakly with
  /// channel state, so the interval is inflated rather than trusted.
  std::vector<double> layer_ci_halfwidth;
};

SizeInferenceResult infer_sizes(ProbeEngine& probe,
                                const SizeInferenceConfig& config = {});

}  // namespace tango::core
