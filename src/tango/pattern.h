// Tango patterns and the central pattern/score databases (paper §4).
//
// A Tango pattern is "a sequence of standard OpenFlow flow_mod commands and
// a corresponding data traffic pattern". The Probing Engine applies a
// pattern to a switch and records a PatternMeasurement into the ScoreDb,
// which every other component (inference engine, schedulers) reads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "openflow/messages.h"
#include "openflow/packet.h"

namespace tango::core {

struct TangoPattern {
  std::string name;
  /// Control-plane command sequence, issued in order.
  std::vector<of::FlowMod> commands;
  /// Data traffic to send after the commands complete (one probe each).
  std::vector<of::PacketHeader> traffic;
};

struct PatternMeasurement {
  std::string pattern;
  SwitchId switch_id = 0;
  /// Barrier-to-barrier time for the whole command sequence.
  SimDuration install_time{};
  /// Commands that the switch rejected (table full etc.).
  std::size_t rejected = 0;
  /// Per-probe data-plane round trips, in traffic order.
  std::vector<SimDuration> rtts;
  /// Probe packets lost (and re-sent) while collecting rtts. Non-zero only
  /// under an active fault injector; a count here means the measurement's
  /// confidence interval should be widened.
  std::size_t lost_probes = 0;
};

/// Extensible registry of named patterns (per §4, components generate the
/// patterns they need and store them here for reuse).
class PatternDb {
 public:
  void put(TangoPattern pattern);
  [[nodiscard]] const TangoPattern* find(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  std::map<std::string, TangoPattern> patterns_;
};

/// Measurement results shared across Tango components, keyed by
/// (switch, pattern name). Later measurements of the same key overwrite.
class ScoreDb {
 public:
  void record(PatternMeasurement m);
  [[nodiscard]] const PatternMeasurement* find(SwitchId sw,
                                               const std::string& pattern) const;
  [[nodiscard]] std::vector<const PatternMeasurement*> for_switch(SwitchId sw) const;
  [[nodiscard]] std::size_t size() const { return db_.size(); }

 private:
  std::map<std::pair<SwitchId, std::string>, PatternMeasurement> db_;
};

}  // namespace tango::core
