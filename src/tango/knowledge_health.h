// Knowledge health: per-property confidence tracking, a drift sentinel fed
// on free signals, and quarantine for low-trust switches.
//
// Tango's schedules are only as good as the inferred SwitchKnowledge they
// run on (§4's online-testing mode). This layer keeps that knowledge
// honest without paying for continuous probing:
//
//  * Free signals — executor cost-hint mispredictions, reconciler readback
//    mismatches, verifier violations — accrue against the responsible
//    property's confidence and the switch's overall trust. They cost
//    nothing: the controller was already measuring.
//  * Escalation — only when cost signals accumulate past a threshold does
//    the sentinel pay for a spot_check() probe; a confirmed drift triggers
//    *targeted* re-inference of the stale property, not a full learn().
//  * Quarantine — when trust or any property confidence falls below the
//    threshold, the switch is quarantined: TangoController::begin_update
//    gives its transactions conservative (inflated) cost estimates and
//    readback-verified commits until trust recovers through clean commits
//    and fresh re-inference.
//
// Deterministic: pure bookkeeping, no RNG, no wall clock — all ages use
// virtual time supplied by the caller.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"
#include "telemetry/trace.h"

namespace tango::core {

/// The independently inferred (and independently re-inferable) properties
/// of a SwitchKnowledge record.
enum class PropertyKind { kSizes = 0, kPolicy = 1, kCosts = 2, kWidth = 3 };
inline constexpr std::size_t kPropertyKinds = 4;

std::string to_string(PropertyKind kind);

struct HealthConfig {
  /// Relative error |actual/predicted - 1| above which a cost observation
  /// counts as a misprediction signal.
  double misprediction_tolerance = 0.5;
  /// Cost-misprediction signals needed before the sentinel escalates to a
  /// spot_check probe.
  std::size_t escalate_after = 3;
  /// spot_check relative drift above which drift is *confirmed* (matches
  /// TangoController::spot_check's |measured/learned - 1| output).
  double spot_check_tolerance = 0.25;
  /// Trust / confidence below this quarantines the switch.
  double quarantine_threshold = 0.5;
  /// Trust and confidence lost per signal.
  double signal_penalty = 0.15;
  /// Trust regained per clean readback-verified commit.
  double clean_commit_recovery = 0.25;
  /// Cost-hint inflation for quarantined switches (conservative fallback).
  double conservative_factor = 3.0;
  /// Batch size handed to spot_check probes.
  std::size_t spot_check_batch = 50;
};

struct PropertyHealth {
  double confidence = 1.0;
  /// When this property was last (re-)inferred.
  SimTime refreshed_at{};
  /// Signals accrued against this property since the last refresh.
  std::size_t signals = 0;
};

struct SwitchHealth {
  std::array<PropertyHealth, kPropertyKinds> props;
  /// Overall trust in the switch executing what it acknowledges.
  double trust = 1.0;
  bool quarantined = false;

  // Lifetime counters (deterministic; folded into chaos fingerprints).
  std::uint64_t cost_mispredictions = 0;
  std::uint64_t readback_mismatches = 0;
  std::uint64_t verifier_violations = 0;
  std::uint64_t spot_checks = 0;
  std::uint64_t drift_confirmed = 0;
  std::uint64_t reinferences = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t quarantine_lifts = 0;

  [[nodiscard]] const PropertyHealth& prop(PropertyKind k) const {
    return props[static_cast<std::size_t>(k)];
  }
  PropertyHealth& prop(PropertyKind k) {
    return props[static_cast<std::size_t>(k)];
  }
};

class KnowledgeHealth {
 public:
  explicit KnowledgeHealth(HealthConfig config = {}) : config_(config) {}

  /// Mirror health counters into `t`'s metrics registry under "health.*"
  /// (non-owning; nullptr detaches). Null-checked per signal, so detached
  /// operation costs nothing.
  void set_telemetry(telemetry::Telemetry* t) { telemetry_ = t; }

  /// Start tracking a switch whose knowledge was just learned/adopted:
  /// full confidence, full trust, refreshed now.
  void track(SwitchId id, SimTime now);

  /// Forget a switch entirely (knowledge dropped).
  void forget(SwitchId id);

  /// Operator-initiated distrust: quarantine `id` immediately (trust is
  /// forced below threshold) until clean commits restore it.
  void suspect(SwitchId id);

  /// Adopt a replicated trust snapshot (HA takeover): track `id` fresh as
  /// of `now`, then overwrite trust and re-derive quarantine. Lifetime
  /// counters restart — they tallied the dead primary's observations; the
  /// trust/quarantine verdict is the state worth surviving a failover.
  void restore(SwitchId id, double trust, bool quarantined, SimTime now);

  // --- free signals ---------------------------------------------------------
  /// Executor cost observation: relative error beyond the tolerance counts
  /// a signal against kCosts.
  void on_cost_observation(SwitchId id, double actual_ms, double predicted_ms,
                           SimTime now);

  /// Reconciler/commit readback found `mismatches` rules diverging from
  /// the intended image — the switch lied about what it installed.
  void on_readback_mismatch(SwitchId id, std::size_t mismatches, SimTime now);

  /// Post-commit consistency verifier found a violation involving `id`.
  void on_verifier_violation(SwitchId id, SimTime now);

  /// A readback-verified commit went through clean: trust recovers.
  void on_clean_verified_commit(SwitchId id, SimTime now);

  // --- sentinel -------------------------------------------------------------
  /// True when accumulated kCosts signals warrant paying for a spot_check.
  [[nodiscard]] bool needs_probe(SwitchId id) const;

  /// Record a spot_check probe result (relative drift). Beyond tolerance:
  /// drift confirmed, kCosts confidence collapses (forcing re-inference +
  /// quarantine); within: the accumulated signals are absolved.
  /// Returns true when drift was confirmed.
  bool record_spot_check(SwitchId id, double drift, SimTime now);

  /// Property `kind` was just re-inferred: confidence restored, signals
  /// cleared; quarantine lifts if trust and every confidence recovered.
  void mark_reinferred(SwitchId id, PropertyKind kind, SimTime now);

  // --- queries --------------------------------------------------------------
  [[nodiscard]] bool quarantined(SwitchId id) const;
  [[nodiscard]] double confidence(SwitchId id, PropertyKind kind) const;
  [[nodiscard]] const SwitchHealth* health(SwitchId id) const;
  [[nodiscard]] const HealthConfig& config() const { return config_; }

 private:
  SwitchHealth& entry(SwitchId id);
  /// Apply a signal's penalty and re-evaluate quarantine.
  void penalize(SwitchHealth& h, SwitchId id, PropertyKind kind, double amount);
  void update_quarantine(SwitchHealth& h, SwitchId id);
  void count(const char* name, std::uint64_t n = 1);

  HealthConfig config_;
  telemetry::Telemetry* telemetry_ = nullptr;
  std::map<SwitchId, SwitchHealth> switches_;
};

}  // namespace tango::core
