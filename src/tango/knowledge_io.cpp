#include "tango/knowledge_io.h"

#include <fstream>
#include <sstream>

namespace tango::core {

namespace {

using tables::Attribute;
using tables::Direction;

std::string attr_token(Attribute attr) {
  switch (attr) {
    case Attribute::kInsertionTime: return "insertion";
    case Attribute::kUseTime: return "use_time";
    case Attribute::kTrafficCount: return "traffic";
    case Attribute::kPriority: return "priority";
  }
  return "?";
}

bool parse_attr(const std::string& token, Attribute* out) {
  if (token == "insertion") { *out = Attribute::kInsertionTime; return true; }
  if (token == "use_time") { *out = Attribute::kUseTime; return true; }
  if (token == "traffic") { *out = Attribute::kTrafficCount; return true; }
  if (token == "priority") { *out = Attribute::kPriority; return true; }
  return false;
}

std::string mode_token(tables::TcamMode mode) { return tables::to_string(mode); }

bool parse_mode(const std::string& token, tables::TcamMode* out) {
  if (token == "single-wide") { *out = tables::TcamMode::kSingleWide; return true; }
  if (token == "double-wide") { *out = tables::TcamMode::kDoubleWide; return true; }
  if (token == "adaptive") { *out = tables::TcamMode::kAdaptive; return true; }
  return false;
}

}  // namespace

void write_knowledge(std::ostream& out, const std::string& key,
                     const SwitchKnowledge& knowledge) {
  out << "[switch " << key << "]\n";
  out << "layer_sizes =";
  for (double v : knowledge.sizes.layer_sizes) out << ' ' << v;
  out << "\n";
  out << "hit_rule_cap = " << (knowledge.sizes.hit_rule_cap ? 1 : 0) << "\n";
  out << "installed = " << knowledge.sizes.installed << "\n";
  out << "cluster_centers_ms =";
  for (const auto& c : knowledge.sizes.clusters) out << ' ' << c.center;
  out << "\n";
  if (knowledge.policy.has_value()) {
    out << "policy =";
    for (const auto& k : knowledge.policy->policy.keys()) {
      out << ' ' << attr_token(k.attr) << ':'
          << (k.dir == Direction::kPreferHigh ? "high" : "low");
    }
    out << "\n";
  }
  if (knowledge.width.has_value() && !knowledge.width->unbounded) {
    out << "tcam_mode = " << mode_token(knowledge.width->mode) << "\n";
    out << "shape_capacities = " << knowledge.width->capacity_l2 << ' '
        << knowledge.width->capacity_l3 << ' ' << knowledge.width->capacity_wide
        << "\n";
  }
  out << "costs = " << knowledge.costs.add_ascending_ms << ' '
      << knowledge.costs.add_descending_ms << ' '
      << knowledge.costs.add_same_priority_ms << ' '
      << knowledge.costs.add_random_ms << ' ' << knowledge.costs.mod_ms << ' '
      << knowledge.costs.del_ms << "\n\n";
}

Result<std::map<std::string, SwitchKnowledge>> read_knowledge(std::istream& in) {
  std::map<std::string, SwitchKnowledge> records;
  SwitchKnowledge* current = nullptr;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (line.front() == '[') {
      const auto close = line.find(']');
      if (close == std::string::npos || line.rfind("[switch ", 0) != 0) {
        return Error{"bad section header at line " + std::to_string(line_no)};
      }
      const std::string key = line.substr(8, close - 8);
      current = &records[key];
      current->name = key;
      continue;
    }
    if (current == nullptr) {
      return Error{"data before any [switch] section at line " +
                   std::to_string(line_no)};
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return Error{"missing '=' at line " + std::to_string(line_no)};
    }
    std::string field = line.substr(0, eq);
    while (!field.empty() && field.back() == ' ') field.pop_back();
    std::istringstream values(line.substr(eq + 1));

    if (field == "layer_sizes") {
      double v;
      while (values >> v) current->sizes.layer_sizes.push_back(v);
    } else if (field == "hit_rule_cap") {
      int v = 0;
      values >> v;
      current->sizes.hit_rule_cap = v != 0;
    } else if (field == "installed") {
      values >> current->sizes.installed;
    } else if (field == "cluster_centers_ms") {
      double v;
      while (values >> v) {
        stats::Cluster c;
        c.center = v;
        c.lo = v;
        c.hi = v;
        current->sizes.clusters.push_back(c);
      }
    } else if (field == "policy") {
      std::vector<tables::PolicyKey> keys;
      std::string token;
      while (values >> token) {
        const auto colon = token.find(':');
        if (colon == std::string::npos) {
          return Error{"bad policy token at line " + std::to_string(line_no)};
        }
        tables::PolicyKey key;
        if (!parse_attr(token.substr(0, colon), &key.attr)) {
          return Error{"unknown attribute at line " + std::to_string(line_no)};
        }
        key.dir = token.substr(colon + 1) == "high" ? Direction::kPreferHigh
                                                    : Direction::kPreferLow;
        keys.push_back(key);
      }
      PolicyInferenceResult policy;
      policy.policy = tables::LexCachePolicy::lex(std::move(keys));
      current->policy = std::move(policy);
    } else if (field == "tcam_mode") {
      std::string token;
      values >> token;
      WidthInferenceResult width = current->width.value_or(WidthInferenceResult{});
      if (!parse_mode(token, &width.mode)) {
        return Error{"unknown tcam mode at line " + std::to_string(line_no)};
      }
      current->width = width;
    } else if (field == "shape_capacities") {
      WidthInferenceResult width = current->width.value_or(WidthInferenceResult{});
      values >> width.capacity_l2 >> width.capacity_l3 >> width.capacity_wide;
      current->width = width;
    } else if (field == "costs") {
      values >> current->costs.add_ascending_ms >>
          current->costs.add_descending_ms >>
          current->costs.add_same_priority_ms >> current->costs.add_random_ms >>
          current->costs.mod_ms >> current->costs.del_ms;
    } else {
      return Error{"unknown field '" + field + "' at line " +
                   std::to_string(line_no)};
    }
    if (values.fail() && !values.eof()) {
      return Error{"unparsable values at line " + std::to_string(line_no)};
    }
  }
  return records;
}

bool save_knowledge_file(const std::string& path,
                         const std::map<std::string, SwitchKnowledge>& records) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# Tango knowledge base (learned switch properties)\n";
  for (const auto& [key, knowledge] : records) {
    write_knowledge(out, key, knowledge);
  }
  return static_cast<bool>(out);
}

Result<std::map<std::string, SwitchKnowledge>> load_knowledge_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error{"cannot open " + path};
  return read_knowledge(in);
}

}  // namespace tango::core
