// The Tango Probing Engine (paper §4): applies Tango patterns to a switch
// over the real OpenFlow channel and collects measurements.
//
// Probe flows are indexed 0..N: flow i matches the exact IPv4 pair
// (10.x.y.z, 192.168+i) so probe rules never overlap each other and are
// L3-only (single-wide TCAM shape). probe_flow(i) sends a packet matching
// exactly rule i.
// Under an active fault injector probes and commands can vanish; the engine
// detects loss via timeouts (a probe that never reports back, a barrier
// whose reply never lands) and re-issues, so inference still converges —
// with the loss counters exposed so measurements can widen their confidence
// intervals instead of silently pretending the channel was clean.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/network.h"
#include "tango/pattern.h"

namespace tango::core {

/// Header layers a probe rule constrains — used by the TCAM-width
/// inference pattern (§3's single/double-wide capacity differences).
enum class RuleShape { kL3Only, kL2Only, kL2AndL3 };

class ProbeEngine {
 public:
  /// Loss-recovery policy. sync_timeout bounds how long a synchronous
  /// operation waits before declaring its message lost; the retry caps
  /// bound how often it is re-issued before being abandoned. The default
  /// timeout of zero means "until the event queue drains" — exact and
  /// unbounded in simulated time, which legitimate batches need (a 5000-add
  /// barrier takes >80 simulated seconds); set a finite timeout when a
  /// fault injector may genuinely lose messages.
  struct Recovery {
    SimDuration sync_timeout{};
    std::size_t max_probe_retries = 10;
    std::size_t max_install_retries = 4;
  };

  ProbeEngine(net::Network& network, SwitchId switch_id);

  void set_recovery(const Recovery& r) { recovery_ = r; }
  [[nodiscard]] const Recovery& recovery() const { return recovery_; }

  // Loss tallies are telemetry::Counter instruments: per-engine values here
  // (each engine probes one switch), mirrored into the network's
  // MetricsRegistry under "probe.*" when telemetry is attached so run
  // reports see the fleet-wide totals.
  /// Probe packets that vanished and were re-sent.
  [[nodiscard]] std::size_t lost_probes() const { return lost_probes_.value(); }
  /// Commands/barriers that vanished and were re-sent.
  [[nodiscard]] std::size_t lost_commands() const {
    return lost_commands_.value();
  }
  /// Probes given up on after max_probe_retries re-sends.
  [[nodiscard]] std::size_t abandoned_probes() const {
    return abandoned_probes_.value();
  }
  /// Installs given up on after max_install_retries re-sends.
  [[nodiscard]] std::size_t abandoned_installs() const {
    return abandoned_installs_.value();
  }

  /// Match/packet construction for probe flow `index`. The default L3-only
  /// shape is single-wide on every TCAM mode that supports it.
  [[nodiscard]] static of::Match probe_match(std::uint32_t index,
                                             RuleShape shape = RuleShape::kL3Only);
  [[nodiscard]] static of::PacketHeader probe_packet(
      std::uint32_t index, RuleShape shape = RuleShape::kL3Only);
  [[nodiscard]] static of::FlowMod probe_add(std::uint32_t index,
                                             std::uint16_t priority = 0x8000,
                                             RuleShape shape = RuleShape::kL3Only);

  /// Install one probe rule (synchronous). Returns false on rejection.
  bool install(std::uint32_t index, std::uint16_t priority = 0x8000,
               RuleShape shape = RuleShape::kL3Only);

  /// Delete every probe rule (and anything else matching-all).
  void clear_rules();

  /// Send a probe packet for flow `index`; returns its data-path RTT.
  /// Lost probes are re-sent (up to max_probe_retries); if every attempt
  /// vanishes, returns a zero duration.
  SimDuration probe_flow(std::uint32_t index);

  /// Like probe_flow, but distinguishes "abandoned" from a real RTT.
  std::optional<SimDuration> try_probe(std::uint32_t index);

  /// Issue a command sequence and time it barrier-to-barrier; then send the
  /// pattern's traffic, collecting RTTs. Records into `scores` if given.
  PatternMeasurement apply(const TangoPattern& pattern, ScoreDb* scores = nullptr);

  /// Barrier-timed batch: send all commands, wait for barrier, return span.
  SimDuration timed_batch(const std::vector<of::FlowMod>& commands,
                          std::size_t* rejected = nullptr);

  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] SwitchId switch_id() const { return switch_id_; }

  /// Probing overhead so far (messages/bytes on this switch's channel).
  [[nodiscard]] const net::ChannelStats& overhead() const;

 private:
  /// Barrier that survives loss: re-sends until a reply lands (bounded).
  SimTime sync_barrier();

  /// Bump a per-engine counter and its fleet-wide registry mirror.
  void count(telemetry::Counter& local, const char* global_name);

  net::Network& network_;
  SwitchId switch_id_;
  Recovery recovery_;
  telemetry::Counter lost_probes_;
  telemetry::Counter lost_commands_;
  telemetry::Counter abandoned_probes_;
  telemetry::Counter abandoned_installs_;
};

}  // namespace tango::core
