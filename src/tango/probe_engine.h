// The Tango Probing Engine (paper §4): applies Tango patterns to a switch
// over the real OpenFlow channel and collects measurements.
//
// Probe flows are indexed 0..N: flow i matches the exact IPv4 pair
// (10.x.y.z, 192.168+i) so probe rules never overlap each other and are
// L3-only (single-wide TCAM shape). probe_flow(i) sends a packet matching
// exactly rule i.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "tango/pattern.h"

namespace tango::core {

/// Header layers a probe rule constrains — used by the TCAM-width
/// inference pattern (§3's single/double-wide capacity differences).
enum class RuleShape { kL3Only, kL2Only, kL2AndL3 };

class ProbeEngine {
 public:
  ProbeEngine(net::Network& network, SwitchId switch_id);

  /// Match/packet construction for probe flow `index`. The default L3-only
  /// shape is single-wide on every TCAM mode that supports it.
  [[nodiscard]] static of::Match probe_match(std::uint32_t index,
                                             RuleShape shape = RuleShape::kL3Only);
  [[nodiscard]] static of::PacketHeader probe_packet(
      std::uint32_t index, RuleShape shape = RuleShape::kL3Only);
  [[nodiscard]] static of::FlowMod probe_add(std::uint32_t index,
                                             std::uint16_t priority = 0x8000,
                                             RuleShape shape = RuleShape::kL3Only);

  /// Install one probe rule (synchronous). Returns false on rejection.
  bool install(std::uint32_t index, std::uint16_t priority = 0x8000,
               RuleShape shape = RuleShape::kL3Only);

  /// Delete every probe rule (and anything else matching-all).
  void clear_rules();

  /// Send a probe packet for flow `index`; returns its data-path RTT.
  SimDuration probe_flow(std::uint32_t index);

  /// Issue a command sequence and time it barrier-to-barrier; then send the
  /// pattern's traffic, collecting RTTs. Records into `scores` if given.
  PatternMeasurement apply(const TangoPattern& pattern, ScoreDb* scores = nullptr);

  /// Barrier-timed batch: send all commands, wait for barrier, return span.
  SimDuration timed_batch(const std::vector<of::FlowMod>& commands,
                          std::size_t* rejected = nullptr);

  [[nodiscard]] net::Network& network() { return network_; }
  [[nodiscard]] SwitchId switch_id() const { return switch_id_; }

  /// Probing overhead so far (messages/bytes on this switch's channel).
  [[nodiscard]] const net::ChannelStats& overhead() const;

 private:
  net::Network& network_;
  SwitchId switch_id_;
};

}  // namespace tango::core
