#include "tango/probe_engine.h"

#include <memory>

namespace tango::core {

ProbeEngine::ProbeEngine(net::Network& network, SwitchId switch_id)
    : network_(network), switch_id_(switch_id) {}

void ProbeEngine::count(telemetry::Counter& local, const char* global_name) {
  local.inc();
  if (auto* t = network_.telemetry()) t->metrics.counter(global_name).inc();
}

namespace {

of::MacAddr probe_mac(std::uint32_t index) {
  return {0x02, 0x10, static_cast<std::uint8_t>(index >> 16),
          static_cast<std::uint8_t>(index >> 8),
          static_cast<std::uint8_t>(index), 0x01};
}

}  // namespace

of::Match ProbeEngine::probe_match(std::uint32_t index, RuleShape shape) {
  of::Match m;
  if (shape != RuleShape::kL2Only) {
    m.with_dl_type(0x0800);
    m.set_nw_src_prefix(0x0a000000u + index, 32);   // 10.x.y.z
    m.set_nw_dst_prefix(0xc0a80000u + index, 32);   // 192.168+ offset
  }
  if (shape != RuleShape::kL3Only) {
    m.with_dl_dst(probe_mac(index));
  }
  return m;
}

of::PacketHeader ProbeEngine::probe_packet(std::uint32_t index, RuleShape shape) {
  of::PacketHeader h;
  h.in_port = 1;
  h.dl_type = 0x0800;
  h.nw_src = 0x0a000000u + index;
  h.nw_dst = 0xc0a80000u + index;
  h.nw_proto = 6;
  h.tp_src = 10000;
  h.tp_dst = 80;
  if (shape != RuleShape::kL3Only) h.dl_dst = probe_mac(index);
  return h;
}

of::FlowMod ProbeEngine::probe_add(std::uint32_t index, std::uint16_t priority,
                                   RuleShape shape) {
  of::FlowMod fm;
  fm.command = of::FlowModCommand::kAdd;
  fm.match = probe_match(index, shape);
  fm.priority = priority;
  fm.cookie = index;
  fm.actions = of::output_to(2);
  return fm;
}

bool ProbeEngine::install(std::uint32_t index, std::uint16_t priority,
                          RuleShape shape) {
  const auto fm = probe_add(index, priority, shape);
  for (std::size_t attempt = 0; attempt <= recovery_.max_install_retries;
       ++attempt) {
    const auto r = network_.install(switch_id_, fm, recovery_.sync_timeout);
    if (!r.lost) return r.accepted;
    count(lost_commands_, "probe.lost_commands");
  }
  count(abandoned_installs_, "probe.abandoned_installs");
  return false;
}

SimTime ProbeEngine::sync_barrier() {
  for (std::size_t attempt = 0; attempt <= recovery_.max_install_retries;
       ++attempt) {
    const auto arrival =
        network_.try_barrier_sync(switch_id_, recovery_.sync_timeout);
    if (arrival.has_value()) return *arrival;
    count(lost_commands_, "probe.lost_commands");
  }
  // Every barrier vanished; fall back to the clock so the caller can at
  // least make progress (the measurement is marked lossy regardless).
  count(abandoned_installs_, "probe.abandoned_installs");
  return network_.now();
}

void ProbeEngine::clear_rules() {
  of::FlowMod fm;
  fm.command = of::FlowModCommand::kDelete;
  fm.match = of::Match::any();
  for (std::size_t attempt = 0; attempt <= recovery_.max_install_retries;
       ++attempt) {
    const auto r = network_.install(switch_id_, fm, recovery_.sync_timeout);
    if (!r.lost) break;
    count(lost_commands_, "probe.lost_commands");
  }
  sync_barrier();
}

std::optional<SimDuration> ProbeEngine::try_probe(std::uint32_t index) {
  const auto header = probe_packet(index);
  for (std::size_t attempt = 0; attempt <= recovery_.max_probe_retries;
       ++attempt) {
    const auto r = network_.probe(switch_id_, header, recovery_.sync_timeout);
    if (!r.lost) return r.rtt;
    count(lost_probes_, "probe.lost_probes");
  }
  count(abandoned_probes_, "probe.abandoned_probes");
  return std::nullopt;
}

SimDuration ProbeEngine::probe_flow(std::uint32_t index) {
  return try_probe(index).value_or(SimDuration{});
}

SimDuration ProbeEngine::timed_batch(const std::vector<of::FlowMod>& commands,
                                     std::size_t* rejected) {
  const SimTime batch_begin = network_.now();
  const SimTime start = sync_barrier();
  // Heap-held counter: under faults a duplicated completion notice can
  // arrive after this function returned.
  auto rejections = std::make_shared<std::size_t>(0);
  network_.post_flow_mod_batch(
      switch_id_, commands, [rejections](bool accepted, SimTime) {
        if (!accepted) ++*rejections;
      });
  const SimTime done = sync_barrier();
  if (rejected != nullptr) *rejected = *rejections;
  if (auto* t = network_.telemetry()) {
    t->trace.span("probe", "timed_batch", switch_id_, batch_begin, done,
                  {telemetry::arg("commands", std::uint64_t{commands.size()}),
                   telemetry::arg("rejected", std::uint64_t{*rejections}),
                   telemetry::arg("span_ns", (done - start).ns())});
    t->metrics.counter("probe.timed_batches").inc();
  }
  return done - start;
}

PatternMeasurement ProbeEngine::apply(const TangoPattern& pattern, ScoreDb* scores) {
  const SimTime round_begin = network_.now();
  PatternMeasurement m;
  m.pattern = pattern.name;
  m.switch_id = switch_id_;
  m.install_time = timed_batch(pattern.commands, &m.rejected);
  m.rtts.reserve(pattern.traffic.size());
  const std::size_t lost_before = lost_probes() + abandoned_probes();
  for (const auto& header : pattern.traffic) {
    for (std::size_t attempt = 0;; ++attempt) {
      const auto r = network_.probe(switch_id_, header, recovery_.sync_timeout);
      if (!r.lost) {
        m.rtts.push_back(r.rtt);
        break;
      }
      count(lost_probes_, "probe.lost_probes");
      if (attempt >= recovery_.max_probe_retries) {
        count(abandoned_probes_, "probe.abandoned_probes");
        m.rtts.push_back(SimDuration{});
        break;
      }
    }
  }
  m.lost_probes = lost_probes() + abandoned_probes() - lost_before;
  if (auto* t = network_.telemetry()) {
    // One span per probe round: pattern application end-to-end (install,
    // barrier, traffic) on the probed switch's lane.
    t->trace.span("probe", "pattern", switch_id_, round_begin, network_.now(),
                  {telemetry::arg_str("pattern", pattern.name),
                   telemetry::arg("rtts", std::uint64_t{m.rtts.size()}),
                   telemetry::arg("lost", std::uint64_t{m.lost_probes}),
                   telemetry::arg("install_ns", m.install_time.ns())});
    t->metrics.counter("probe.pattern_rounds").inc();
    t->metrics.counter("probe.rtts_collected").inc(m.rtts.size());
  }
  if (scores != nullptr) scores->record(m);
  return m;
}

const net::ChannelStats& ProbeEngine::overhead() const {
  return network_.stats(switch_id_);
}

}  // namespace tango::core
