#include "tango/probe_engine.h"

namespace tango::core {

ProbeEngine::ProbeEngine(net::Network& network, SwitchId switch_id)
    : network_(network), switch_id_(switch_id) {}

namespace {

of::MacAddr probe_mac(std::uint32_t index) {
  return {0x02, 0x10, static_cast<std::uint8_t>(index >> 16),
          static_cast<std::uint8_t>(index >> 8),
          static_cast<std::uint8_t>(index), 0x01};
}

}  // namespace

of::Match ProbeEngine::probe_match(std::uint32_t index, RuleShape shape) {
  of::Match m;
  if (shape != RuleShape::kL2Only) {
    m.with_dl_type(0x0800);
    m.set_nw_src_prefix(0x0a000000u + index, 32);   // 10.x.y.z
    m.set_nw_dst_prefix(0xc0a80000u + index, 32);   // 192.168+ offset
  }
  if (shape != RuleShape::kL3Only) {
    m.with_dl_dst(probe_mac(index));
  }
  return m;
}

of::PacketHeader ProbeEngine::probe_packet(std::uint32_t index, RuleShape shape) {
  of::PacketHeader h;
  h.in_port = 1;
  h.dl_type = 0x0800;
  h.nw_src = 0x0a000000u + index;
  h.nw_dst = 0xc0a80000u + index;
  h.nw_proto = 6;
  h.tp_src = 10000;
  h.tp_dst = 80;
  if (shape != RuleShape::kL3Only) h.dl_dst = probe_mac(index);
  return h;
}

of::FlowMod ProbeEngine::probe_add(std::uint32_t index, std::uint16_t priority,
                                   RuleShape shape) {
  of::FlowMod fm;
  fm.command = of::FlowModCommand::kAdd;
  fm.match = probe_match(index, shape);
  fm.priority = priority;
  fm.cookie = index;
  fm.actions = of::output_to(2);
  return fm;
}

bool ProbeEngine::install(std::uint32_t index, std::uint16_t priority,
                          RuleShape shape) {
  return network_.install(switch_id_, probe_add(index, priority, shape)).accepted;
}

void ProbeEngine::clear_rules() {
  of::FlowMod fm;
  fm.command = of::FlowModCommand::kDelete;
  fm.match = of::Match::any();
  network_.install(switch_id_, fm);
  network_.barrier_sync(switch_id_);
}

SimDuration ProbeEngine::probe_flow(std::uint32_t index) {
  return network_.probe(switch_id_, probe_packet(index)).rtt;
}

SimDuration ProbeEngine::timed_batch(const std::vector<of::FlowMod>& commands,
                                     std::size_t* rejected) {
  const SimTime start = network_.barrier_sync(switch_id_);
  std::size_t rejections = 0;
  for (const auto& fm : commands) {
    network_.post_flow_mod(switch_id_, fm, [&rejections](bool accepted, SimTime) {
      if (!accepted) ++rejections;
    });
  }
  const SimTime done = network_.barrier_sync(switch_id_);
  if (rejected != nullptr) *rejected = rejections;
  return done - start;
}

PatternMeasurement ProbeEngine::apply(const TangoPattern& pattern, ScoreDb* scores) {
  PatternMeasurement m;
  m.pattern = pattern.name;
  m.switch_id = switch_id_;
  m.install_time = timed_batch(pattern.commands, &m.rejected);
  m.rtts.reserve(pattern.traffic.size());
  for (const auto& header : pattern.traffic) {
    m.rtts.push_back(network_.probe(switch_id_, header).rtt);
  }
  if (scores != nullptr) scores->record(m);
  return m;
}

const net::ChannelStats& ProbeEngine::overhead() const {
  return network_.stats(switch_id_);
}

}  // namespace tango::core
