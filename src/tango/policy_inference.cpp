#include "tango/policy_inference.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/cluster.h"
#include "stats/correlation.h"

namespace tango::core {

namespace {

using tables::Attribute;
using tables::Direction;
using tables::PolicyKey;

bool contains(const std::vector<PolicyKey>& keys, Attribute attr) {
  return std::any_of(keys.begin(), keys.end(),
                     [&](const PolicyKey& k) { return k.attr == attr; });
}

}  // namespace

AttributeInit make_attribute_init(std::size_t flows, Rng& rng) {
  AttributeInit init;
  init.insertion_rank = rng.permutation(flows);
  init.use_rank = rng.permutation(flows);
  init.traffic_rank = rng.permutation(flows);
  init.priority_rank = rng.permutation(flows);
  return init;
}

PolicyInferenceResult infer_policy(ProbeEngine& probe,
                                   const PolicyInferenceConfig& config) {
  PolicyInferenceResult result;
  Rng rng(config.seed);
  const std::size_t s = 2 * config.cache_size;

  std::vector<PolicyKey> policy;
  for (std::size_t round = 0; round < 4; ++round) {
    ++result.rounds;
    const AttributeInit init = make_attribute_init(s, rng);

    // --- fresh slate ------------------------------------------------------
    probe.clear_rules();

    // --- install in insertion-rank order ----------------------------------
    // Flow with insertion_rank r is the r-th installed (higher rank=newer).
    std::vector<std::uint32_t> by_insert(s);
    for (std::size_t f = 0; f < s; ++f) by_insert[init.insertion_rank[f]] =
        static_cast<std::uint32_t>(f);
    const bool priority_held = contains(policy, Attribute::kPriority);
    for (std::size_t r = 0; r < s; ++r) {
      const std::uint32_t f = by_insert[r];
      const std::uint16_t priority =
          priority_held
              ? static_cast<std::uint16_t>(0x4000)
              : static_cast<std::uint16_t>(
                    1000 + config.priority_spacing * init.priority_rank[f]);
      probe.install(f, priority);
    }

    // --- traffic-count initialization --------------------------------------
    // Target count for rank r is 2 + spacing*r (equalized when held). The
    // later use-time and measurement passes add exactly one probe to every
    // flow each, preserving the spacing (MONOTONE needs only the sign).
    const bool traffic_held = contains(policy, Attribute::kTrafficCount);
    for (std::size_t f = 0; f < s; ++f) {
      const std::size_t target =
          traffic_held ? 2 : 2 + config.traffic_spacing * init.traffic_rank[f];
      for (std::size_t i = 0; i < target; ++i) {
        probe.probe_flow(static_cast<std::uint32_t>(f));
      }
    }

    // --- use-time initialization -------------------------------------------
    // Probe once per flow, oldest-use rank first, so final use order equals
    // use_rank.
    std::vector<std::uint32_t> by_use(s);
    for (std::size_t f = 0; f < s; ++f) by_use[init.use_rank[f]] =
        static_cast<std::uint32_t>(f);
    for (std::size_t r = 0; r < s; ++r) probe.probe_flow(by_use[r]);

    // --- measurement pass: MRU-first keeps relative use order intact -------
    std::vector<double> rtt_ms(s, 0);
    for (std::size_t r = s; r-- > 0;) {
      const std::uint32_t f = by_use[r];
      rtt_ms[f] = probe.probe_flow(f).ms();
    }

    // --- cached set = the fastest `cached_clusters` RTT bands --------------
    const auto clusters = stats::gap_clusters(rtt_ms);
    std::vector<bool> cached(s, false);
    for (std::size_t f = 0; f < s; ++f) {
      cached[f] = stats::classify(clusters, rtt_ms[f]) < config.cached_clusters;
    }

    // --- correlate each free attribute with membership ---------------------
    struct Candidate {
      Attribute attr;
      const std::vector<std::size_t>* ranks;
    };
    std::vector<Candidate> candidates;
    if (!contains(policy, Attribute::kInsertionTime)) {
      candidates.push_back({Attribute::kInsertionTime, &init.insertion_rank});
    }
    if (!contains(policy, Attribute::kUseTime)) {
      candidates.push_back({Attribute::kUseTime, &init.use_rank});
    }
    if (!traffic_held) {
      candidates.push_back({Attribute::kTrafficCount, &init.traffic_rank});
    }
    if (!priority_held) {
      candidates.push_back({Attribute::kPriority, &init.priority_rank});
    }
    if (candidates.empty()) break;

    double best_corr = 0;
    Attribute best_attr = Attribute::kInsertionTime;
    for (const auto& c : candidates) {
      std::vector<double> xs(s);
      for (std::size_t f = 0; f < s; ++f) xs[f] = static_cast<double>((*c.ranks)[f]);
      const double corr = stats::point_biserial(xs, cached);
      if (std::abs(corr) > std::abs(best_corr)) {
        best_corr = corr;
        best_attr = c.attr;
      }
    }

    if (std::abs(best_corr) < config.min_correlation) break;  // no signal left

    policy.push_back(PolicyKey{
        best_attr,
        best_corr > 0 ? Direction::kPreferHigh : Direction::kPreferLow});
    result.correlations.push_back(std::abs(best_corr));

    if (tables::is_serial_attribute(best_attr)) break;  // unique values: done
  }

  probe.clear_rules();
  result.policy = tables::LexCachePolicy::lex(std::move(policy));
  return result;
}

}  // namespace tango::core
