// Cache-replacement-policy inference — the paper's Algorithm 2 (§5.3).
//
// The engine installs 2 * cache_size probe flows and initializes each
// candidate attribute (insertion time, use time, traffic count, priority)
// to an independent permutation of ranks, so that no attribute's top half
// coincides with another's. After a measurement pass (probing in
// most-recently-used-first order, which preserves the relative use-time
// ordering at every measurement instant), the flows whose RTT falls in the
// fastest cluster are the cached set; the attribute whose ranks correlate
// most strongly (positively or negatively) with membership is the policy's
// primary sort key. Non-serial keys (priority, traffic) are then held
// constant and the procedure recurses to find tie-break keys; serial keys
// (insertion, use time) are unique by construction, so recursion stops.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "tables/cache_policy.h"
#include "tango/probe_engine.h"

namespace tango::core {

struct PolicyInferenceConfig {
  /// Ground cache size (level-0 capacity), usually from size inference.
  std::size_t cache_size = 100;
  /// Traffic-count spacing between adjacent ranks (must exceed the number
  /// of extra probes each flow receives during measurement: MONOTONE makes
  /// anything >= 2 sufficient; we keep the paper's value 10 configurable).
  std::size_t traffic_spacing = 4;
  /// Priority spacing between adjacent ranks.
  std::uint16_t priority_spacing = 8;
  /// |correlation| below this is treated as "no further signal". The
  /// threshold is deliberately high: when a traffic-count key has been
  /// held constant (equalized), the measurement probes themselves perturb
  /// the equalized counts, which induces spurious weak correlations on the
  /// remaining attributes — genuine sort keys show |r| near 0.9 under this
  /// pattern, so anything far below is noise.
  double min_correlation = 0.6;
  /// Number of leading RTT clusters treated as "cached" when computing
  /// membership. 1 infers the policy at the fastest-table boundary; k > 1
  /// infers the policy governing the top k tiers of a multi-level cache
  /// (cache_size must then be the combined capacity of those tiers).
  std::size_t cached_clusters = 1;
  std::uint64_t seed = 7;
};

struct PolicyInferenceResult {
  tables::LexCachePolicy policy;
  /// |correlation| achieved per inferred key (diagnostic).
  std::vector<double> correlations;
  /// Number of recursion rounds executed.
  std::size_t rounds = 0;
};

/// Initialized per-flow attribute ranks for one probing round; exposed so
/// the Fig 6 bench can visualize the pattern.
struct AttributeInit {
  std::vector<std::size_t> insertion_rank;  // position in install order
  std::vector<std::size_t> use_rank;        // position in use-time order
  std::vector<std::size_t> traffic_rank;
  std::vector<std::size_t> priority_rank;
};

AttributeInit make_attribute_init(std::size_t flows, Rng& rng);

PolicyInferenceResult infer_policy(ProbeEngine& probe,
                                   const PolicyInferenceConfig& config = {});

}  // namespace tango::core
