// Rule-operation latency profiling (the "rewriting patterns" of §4/§6).
//
// Measures, per switch, the barrier-timed cost of: additions in ascending /
// descending / constant / random priority order, modifications, and
// deletions. The resulting per-op cost estimates are what the Tango
// scheduler's pattern scores are computed from — so the same scheduler
// adapts to each switch's measured behaviour instead of hardcoded weights.
#pragma once

#include <cstddef>

#include "common/types.h"
#include "tango/pattern.h"
#include "tango/probe_engine.h"

namespace tango::core {

/// Per-operation average costs (milliseconds per rule), measured.
struct OpCostEstimate {
  double add_ascending_ms = 0;
  double add_descending_ms = 0;
  double add_same_priority_ms = 0;
  double add_random_ms = 0;
  double mod_ms = 0;
  double del_ms = 0;

  /// Cheapest measured way to add rules (the priority pattern the
  /// scheduler should rewrite toward).
  [[nodiscard]] double best_add_ms() const;
  /// True when priority order measurably matters (hardware TCAMs).
  [[nodiscard]] bool priority_sensitive(double threshold = 1.5) const;
};

struct LatencyProfileConfig {
  /// Rules per timed batch.
  std::size_t batch_size = 500;
  /// Rules preinstalled (random priorities in [preinstall_base,
  /// preinstall_base + preinstalled)) before measuring, to expose shift
  /// costs at depth; mirrors the paper's Fig 3 methodology (1000 rules of
  /// random priority preinstalled).
  std::size_t preinstalled = 1000;
  std::uint16_t preinstall_base = 1000;
  std::uint64_t seed = 11;
};

OpCostEstimate profile_op_costs(ProbeEngine& probe,
                                const LatencyProfileConfig& config = {},
                                ScoreDb* scores = nullptr);

/// Helper used by the profiler and the Fig 3 benches: build an add-batch of
/// `count` probe rules with the given priority sequence.
std::vector<of::FlowMod> make_add_batch(std::uint32_t first_index, std::size_t count,
                                        const std::vector<std::uint16_t>& priorities);

/// Priority sequences for the four orderings. `base` is the lowest value in
/// the range; descending runs from base+count-1 down to base.
std::vector<std::uint16_t> ascending_priorities(std::size_t count,
                                                std::uint16_t base = 100);
std::vector<std::uint16_t> descending_priorities(std::size_t count,
                                                 std::uint16_t base = 100);
std::vector<std::uint16_t> constant_priorities(std::size_t count,
                                               std::uint16_t value = 0x8000);
std::vector<std::uint16_t> random_priorities(std::size_t count, Rng& rng,
                                             std::uint16_t base = 100);

}  // namespace tango::core
