// TangoController — the facade that ties the framework together (paper
// Fig 4): pattern & score databases, probing engine, and switch inference
// engine. learn() runs the full inference pipeline for one switch and
// caches a SwitchKnowledge record that schedulers and applications consume.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "net/network.h"
#include "scheduler/transaction.h"
#include "tables/cache_policy.h"
#include "tango/knowledge_health.h"
#include "tango/latency_profiler.h"
#include "tango/pattern.h"
#include "tango/policy_inference.h"
#include "tango/size_inference.h"
#include "tango/width_inference.h"

namespace tango::core {

struct SwitchKnowledge {
  SwitchId switch_id = 0;
  std::string name;
  SizeInferenceResult sizes;
  std::optional<PolicyInferenceResult> policy;
  std::optional<WidthInferenceResult> width;
  OpCostEstimate costs;

  /// Inferred fast-table (level 0) capacity, 0 when unbounded/unknown.
  [[nodiscard]] std::size_t fast_table_size() const;
  [[nodiscard]] std::string summary() const;
};

struct LearnOptions {
  SizeInferenceConfig size;
  LatencyProfileConfig latency;
  /// Policy inference needs a bounded fast table and O(cache) probes; it is
  /// skipped for switches whose fast table looks unbounded or larger than
  /// this (probing cost guard).
  std::size_t max_policy_cache_size = 2048;
  bool infer_policy = true;
  /// TCAM width/mode probing (three full fills: the most expensive
  /// pattern, off by default).
  bool infer_width = false;
};

/// One sentinel decision for one switch (see TangoController::run_sentinel).
struct SentinelAction {
  SwitchId switch_id = 0;
  /// spot_check output (|measured/learned - 1|) when probed; negative when
  /// the probe could not run.
  double drift = -1.0;
  bool probed = false;
  /// Drift confirmed beyond the spot-check tolerance.
  bool confirmed = false;
  /// Targeted re-inference of the stale property ran.
  bool reinferred = false;
  /// Quarantine state after the sentinel acted.
  bool quarantined = false;
};

class TangoController {
 public:
  explicit TangoController(net::Network& network) : network_(network) {}

  /// Run (or return cached) full inference for a switch.
  const SwitchKnowledge& learn(SwitchId id, const LearnOptions& options = {});

  /// Adopt externally supplied knowledge (a previous run, a config file)
  /// without probing. Replaces any cached record; tracked by the health
  /// layer exactly like learned knowledge.
  const SwitchKnowledge& adopt(SwitchKnowledge know);

  /// Cheap online drift check (the "online testing when the switch is
  /// running" mode of §4): time one small ascending-add batch and compare
  /// against the learned per-rule cost. Returns |measured/learned - 1|, or
  /// a negative value when the switch has not been learned yet. The probe
  /// rules are cleaned up afterwards.
  double spot_check(SwitchId id, std::size_t batch = 50);

  /// Drop cached knowledge and re-run inference (e.g. after spot_check
  /// reports drift beyond tolerance).
  const SwitchKnowledge& refresh(SwitchId id, const LearnOptions& options = {});

  /// Targeted re-inference: re-probe only `kind` on a switch whose other
  /// properties are still trusted — a fraction of a full learn(). Falls
  /// back to learn() when the switch is unknown. Like learn(), this clears
  /// the switch's rules (probe workloads need an empty table).
  const SwitchKnowledge& reinfer(SwitchId id, PropertyKind kind,
                                 const LearnOptions& options = {});

  /// Drift sentinel sweep: for every known switch whose accumulated free
  /// signals warrant it (KnowledgeHealth::needs_probe, or all switches when
  /// `force_probe`), pay for a spot_check probe; on confirmed drift run
  /// targeted re-inference of the cost property. Returns one action record
  /// per probed switch.
  std::vector<SentinelAction> run_sentinel(const LearnOptions& options = {},
                                           bool force_probe = false);

  /// Begin a transactional update: snapshot pre-state of every affected
  /// switch, journal each request's intent and inverse, stamp cookies.
  /// Executor cost hints are pre-filled from learned knowledge (a scheduler
  /// built from the same hints sees consistent estimates). The caller picks
  /// the scheduler at commit() time.
  ///
  /// Knowledge-health wiring: quarantined switches get conservative
  /// (inflated) cost hints and are added to options.readback_verify so
  /// their commits are readback-verified; the executor's cost observations
  /// and the transaction's final report are chained into the health layer
  /// (user-provided callbacks still fire afterwards).
  sched::UpdateTransaction begin_update(sched::RequestDag dag,
                                        sched::TransactionOptions options = {});

  /// Re-entrant begin_update for the intent service: safe to call while
  /// other transactions are mid-commit, provided the footprints are
  /// disjoint (no Match overlap on shared switches) — the construction-time
  /// snapshot pumps the shared event queue, which advances in-flight
  /// commits, and scope_to_footprint (forced on here) keeps each
  /// transaction's world-view and reconciliation inside its own rule space.
  /// Heap allocation gives the transaction the stable address its
  /// phased-commit observers (start_commit .. finish_commit) capture.
  std::unique_ptr<sched::UpdateTransaction> begin_update_concurrent(
      sched::RequestDag dag, sched::TransactionOptions options = {});

  [[nodiscard]] const SwitchKnowledge* knowledge(SwitchId id) const;
  [[nodiscard]] bool knows(SwitchId id) const { return knowledge(id) != nullptr; }

  PatternDb& patterns() { return patterns_; }
  ScoreDb& scores() { return scores_; }
  net::Network& network() { return network_; }
  /// Health/trust bookkeeping for every known switch.
  KnowledgeHealth& health() { return health_; }
  [[nodiscard]] const KnowledgeHealth& health() const { return health_; }

 private:
  net::Network& network_;
  PatternDb patterns_;
  ScoreDb scores_;
  std::map<SwitchId, SwitchKnowledge> knowledge_;
  KnowledgeHealth health_;
};

}  // namespace tango::core
