#include "sim/event_queue.h"

#include <utility>

namespace tango::sim {

std::uint32_t EventQueue::acquire_slot(Callback fn) {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    pool_[slot] = std::move(fn);
    return slot;
  }
  pool_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(pool_.size() - 1);
}

void EventQueue::schedule_at(SimTime at, Callback fn) {
  if (at < now_) at = now_;
  heap_.push_back(Item{at, next_seq_++, acquire_slot(std::move(fn))});
  sift_up(heap_.size() - 1);
}

EventQueue::Callback EventQueue::pop_top() {
  const Item top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  Callback fn = std::move(pool_[top.slot]);
  // Leave the moved-from function empty and recycle the slot: the next
  // schedule_at move-assigns into it without touching the heap's layout.
  pool_[top.slot] = nullptr;
  free_.push_back(top.slot);
  now_ = top.at;
  return fn;
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && before(heap_[l], heap_[best])) best = l;
    if (r < n && before(heap_[r], heap_[best])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

std::size_t EventQueue::run() {
  std::size_t count = 0;
  while (!heap_.empty()) {
    // Move the callback out before running: it may schedule more events
    // (growing the pool) or even re-enter the queue.
    Callback fn = pop_top();
    fn();
    ++count;
  }
  return count;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_.front().at <= deadline) {
    Callback fn = pop_top();
    fn();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  Callback fn = pop_top();
  fn();
  return true;
}

void EventQueue::reserve(std::size_t n) {
  heap_.reserve(n);
  pool_.reserve(n);
  free_.reserve(n);
}

void EventQueue::reset() {
  heap_.clear();
  pool_.clear();
  free_.clear();
  now_ = SimTime{};
  next_seq_ = 0;
}

}  // namespace tango::sim
