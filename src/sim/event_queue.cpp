#include "sim/event_queue.h"

#include <utility>

namespace tango::sim {

void EventQueue::schedule_at(SimTime at, Callback fn) {
  if (at < now_) at = now_;
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

std::size_t EventQueue::run() {
  std::size_t count = 0;
  while (!heap_.empty()) {
    // Copy out before pop: the callback may schedule more events.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.at;
    ev.fn();
    ++count;
  }
  return count;
}

std::size_t EventQueue::run_until(SimTime deadline) {
  std::size_t count = 0;
  while (!heap_.empty() && heap_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.at;
    ev.fn();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.at;
  ev.fn();
  return true;
}

void EventQueue::reset() {
  heap_ = {};
  now_ = SimTime{};
  next_seq_ = 0;
}

}  // namespace tango::sim
