// Deterministic discrete-event simulation core.
//
// The network executor, control channels, and switch models all advance a
// shared EventQueue; ties in time are broken by insertion sequence so runs
// are bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace tango::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Only advances inside run()/run_until().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now if in past).
  void schedule_at(SimTime at, Callback fn);

  /// Schedule `fn` to run `delay` after the current time.
  void schedule_after(SimDuration delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue drains. Returns the number of events run.
  std::size_t run();

  /// Run events with time <= deadline. Events scheduled beyond stay queued.
  std::size_t run_until(SimTime deadline);

  /// Run exactly one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Time of the earliest pending event. Only valid when !empty(); lets
  /// bounded-wait loops stop stepping once everything left lies beyond
  /// their deadline.
  [[nodiscard]] SimTime peek_time() const { return heap_.top().at; }

  /// Drop all pending events and reset the clock to zero.
  void reset();

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace tango::sim
