// Deterministic discrete-event simulation core.
//
// The network executor, control channels, and switch models all advance a
// shared EventQueue.
//
// Ordering contract (pinned by test_event_queue's regression suite, and
// load-bearing for every chaos/soak fingerprint): events pop strictly
// ordered by (time, insertion sequence). Two events scheduled for the same
// instant run in the order schedule_at()/schedule_after() was called —
// including events a running callback schedules for "now". The tiebreak is
// the only thing standing between two same-seed worlds and divergence, so
// it must never depend on allocation addresses, hashing, or any other
// run-to-run-unstable input. Parallel seed sweeps (src/runner) rely on this:
// each worker owns a private EventQueue whose trace is a pure function of
// what was scheduled, never of what other workers are doing.
//
// Storage is pooled for the simulator's hot path: callbacks live in
// recycled slots and the heap orders small POD handles, so steady-state
// scheduling (the millions of send/deliver/complete events of a
// 1024-switch run) stops allocating once the pool is warm.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace tango::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time. Only advances inside run()/run_until()/step().
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now if in past).
  void schedule_at(SimTime at, Callback fn);

  /// Schedule `fn` to run `delay` after the current time.
  void schedule_after(SimDuration delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue drains. Returns the number of events run.
  std::size_t run();

  /// Run events with time <= deadline. Events scheduled beyond stay queued.
  std::size_t run_until(SimTime deadline);

  /// Run exactly one event; returns false if the queue was empty.
  bool step();

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Time of the earliest pending event. Only valid when !empty(); lets
  /// bounded-wait loops stop stepping once everything left lies beyond
  /// their deadline.
  [[nodiscard]] SimTime peek_time() const { return heap_.front().at; }

  /// Pre-size the slot pool and heap for `n` concurrently-pending events.
  void reserve(std::size_t n);

  /// Slots currently available for reuse (observability for pool tests).
  [[nodiscard]] std::size_t free_slots() const { return free_.size(); }

  /// Drop all pending events and reset the clock to zero. Pool capacity is
  /// retained.
  void reset();

 private:
  /// Heap handle: ordering key plus the index of the callback's pool slot.
  /// Kept POD-small so sift operations move 24 bytes, not a std::function.
  struct Item {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  static bool before(const Item& a, const Item& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot(Callback fn);
  /// Pop the top item and return its callback; releases the slot.
  Callback pop_top();
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::vector<Item> heap_;        // binary min-heap ordered by before()
  std::vector<Callback> pool_;    // slot-addressed callback storage
  std::vector<std::uint32_t> free_;  // recycled pool slots
};

}  // namespace tango::sim
