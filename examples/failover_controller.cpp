// Capstone: a miniature event-driven SDN controller on the B4 WAN.
//
// The controller installs paths for a set of flows, watches for PORT_STATUS
// events, and on a link failure recomputes routes and pushes the repair DAG
// through the Tango scheduler (with costs learned by probing beforehand) —
// as an update transaction, so a mid-repair agent crash would be journaled
// and reconciled rather than silently losing rules. The run verifies
// data-plane recovery twice: with probe packets, and with the transaction's
// consistency verifier walking every rerouted flow to its egress.
//
//   $ ./examples/failover_controller
#include <cstdio>
#include <map>
#include <set>

#include "apps/flow_monitor.h"
#include "apps/path_installer.h"
#include "net/b4.h"
#include "scheduler/schedulers.h"
#include "scheduler/transaction.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"

namespace {

using namespace tango;

struct Flow {
  std::uint32_t id;
  net::NodeId src;
  net::NodeId dst;
  std::vector<net::NodeId> path;
};

/// Install the initial paths; returns the flow table.
std::vector<Flow> install_initial(net::Network& net, apps::PathInstaller& paths,
                                  sched::UpdateScheduler& scheduler) {
  std::vector<Flow> flows;
  Rng rng(77);
  sched::RequestDag dag;
  for (std::uint32_t f = 0; f < 200; ++f) {
    Flow flow;
    flow.id = f;
    flow.src = rng.index(12);
    do {
      flow.dst = rng.index(12);
    } while (flow.dst == flow.src);
    flow.path = net.topology().shortest_path(flow.src, flow.dst);

    apps::PathRequest req;
    req.src = flow.src;
    req.dst = flow.dst;
    req.flow_id = f;
    req.priority = static_cast<std::uint16_t>(1000 + f);
    paths.compile(req, dag);
    flows.push_back(std::move(flow));
  }
  sched::execute(net, dag, scheduler);
  return flows;
}

/// Data-plane check: fraction of flows whose first hop forwards (after one
/// warming probe for OVS microflows).
double forwarding_fraction(net::Network& net, const std::vector<Flow>& flows) {
  std::size_t ok = 0, total = 0;
  for (const auto& flow : flows) {
    if (flow.path.size() < 2) continue;
    ++total;
    const auto sw = net::Network::switch_of(flow.path[0]);
    net.probe(sw, core::ProbeEngine::probe_packet(flow.id));
    const auto out = net.probe(sw, core::ProbeEngine::probe_packet(flow.id));
    if (out.outcome.kind == switchsim::ForwardOutcome::Kind::kForwarded) ++ok;
  }
  return total == 0 ? 1.0 : static_cast<double>(ok) / static_cast<double>(total);
}

}  // namespace

int main() {
  net::Network net;
  const auto sites = net::build_b4(net, switchsim::profiles::ovs());
  apps::PathInstaller paths(net);
  apps::FlowMonitor monitor(net);

  // Learn OVS costs once (any site; they share a profile).
  core::TangoController tango(net);
  core::LearnOptions learn_options;
  learn_options.size.max_rules = 256;
  learn_options.infer_policy = false;
  const auto costs = tango.learn(sites[0], learn_options).costs;
  core::ProbeEngine(net, sites[0]).clear_rules();
  std::map<SwitchId, core::OpCostEstimate> cost_map;
  for (const auto id : sites) cost_map[id] = costs;

  sched::BasicTangoScheduler tango_sched(cost_map);
  auto flows = install_initial(net, paths, tango_sched);
  std::printf("installed %zu flows across the 12-site B4 WAN\n", flows.size());
  std::printf("pre-failure forwarding: %.0f%%\n",
              100 * forwarding_fraction(net, flows));

  // --- the event: a busy trans-continental link fails ----------------------
  constexpr std::size_t kFailedLink = 5;  // B4 sites 4-5
  net.set_link_state(kFailedLink, false);
  net.run_all();
  std::printf("\nlink %zu failed; PORT_STATUS events received: %zu\n",
              kFailedLink, monitor.port_events().size());

  // --- controller reaction: recompute and repair ---------------------------
  const auto& link = net.topology().link(kFailedLink);
  sched::RequestDag repair;
  std::size_t rerouted = 0;
  for (auto& flow : flows) {
    bool crosses = false;
    for (std::size_t i = 0; i + 1 < flow.path.size(); ++i) {
      if ((flow.path[i] == link.a && flow.path[i + 1] == link.b) ||
          (flow.path[i] == link.b && flow.path[i + 1] == link.a)) {
        crosses = true;
        break;
      }
    }
    if (!crosses) continue;
    apps::PathRequest req;
    req.src = flow.src;
    req.dst = flow.dst;
    req.flow_id = flow.id;
    req.priority = static_cast<std::uint16_t>(1000 + flow.id);
    paths.compile_reroute(req, flow.path, repair);
    flow.path = net.topology().shortest_path(flow.src, flow.dst);
    ++rerouted;
  }
  std::printf("flows crossing the failed link: %zu -> repair DAG of %zu requests\n",
              rerouted, repair.size());

  // Push the repair as a roll-forward transaction: every intent (and its
  // inverse) is journaled before the first flow_mod leaves the controller.
  auto txn = tango.begin_update(std::move(repair));
  const auto& report = txn.commit(tango_sched);
  std::printf("repair makespan (Tango)  : %.3f s  (%zu rejected, %zu rounds, "
              "journal %zu, committed %s)\n",
              report.exec.makespan.sec(), report.exec.rejected,
              report.exec.scheduling_rounds, txn.journal().size(),
              report.committed ? "yes" : "no");
  std::printf("post-repair forwarding   : %.0f%%\n",
              100 * forwarding_fraction(net, flows));

  // Control-plane consistency check: walk every rerouted flow from its
  // ingress switch to its egress switch — no black holes, no loops, no
  // stale rules shadowing the repair.
  std::vector<sched::FlowCheck> checks;
  for (const auto& flow : flows) {
    if (flow.path.size() < 2) continue;
    sched::FlowCheck check;
    check.ingress = net::Network::switch_of(flow.path.front());
    check.packet = core::ProbeEngine::probe_packet(flow.id);
    check.expected_egress = net::Network::switch_of(flow.path.back());
    checks.push_back(check);
  }
  const auto& verdict = txn.verify(checks);
  std::printf("verifier: %zu flows walked — %zu black holes, %zu loops, "
              "%zu shadowed, %zu wrong egress\n",
              verdict.flows_checked, verdict.black_holes, verdict.loops,
              verdict.shadowed, verdict.wrong_egress);

  std::printf("\nflow_removed notices: %zu; port events: %zu — the monitor saw\n"
              "the whole story without polling.\n",
              monitor.removal_count(), monitor.port_events().size());
  return 0;
}
