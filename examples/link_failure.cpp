// Link-failure recovery on the testbed triangle (paper §7.2, LF scenario):
// the s1-s2 link fails and 400 flows must be rerouted via s3 (an ADD on s3
// followed by a MOD on s1 per flow, destination side first). Shows the
// whole story end to end: preinstall the old paths, fail the link, then
// compare recovery makespan under Dionysus vs Tango — with each recovery
// pushed as an update transaction (intent journal + post-commit
// verification that every repointed flow matches its own rule).
//
//   $ ./examples/link_failure [n_flows]
#include <cstdio>
#include <cstdlib>

#include "net/network.h"
#include "scheduler/schedulers.h"
#include "scheduler/transaction.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"
#include "tango/tango.h"
#include "workload/scenarios.h"

namespace {

struct Testbed {
  tango::net::Network net;
  tango::workload::TestbedIds ids;
  std::size_t s1s2_link = 0;
};

void build(Testbed& tb) {
  namespace profiles = tango::switchsim::profiles;
  tb.ids.s1 = tb.net.add_switch(profiles::switch1());
  tb.ids.s2 = tb.net.add_switch(profiles::switch1());
  tb.ids.s3 = tb.net.add_switch(profiles::switch3());
  auto& topo = tb.net.topology();
  tb.s1s2_link = topo.add_link(0, 1);
  topo.add_link(1, 2);
  topo.add_link(0, 2);
}

// The "before" state: each flow has a rule on s1 pointing directly at s2.
void preinstall_old_paths(Testbed& tb, std::size_t n_flows) {
  tango::core::ProbeEngine probe(tb.net, tb.ids.s1);
  for (std::uint32_t i = 0; i < n_flows; ++i) {
    probe.install(i, static_cast<std::uint16_t>(2000 + (i % 64)));
  }
  // Bounded barrier: a wedged agent shows up as a warning, not a hang.
  if (!tb.net.try_barrier_sync(tb.ids.s1, tango::millis(500)).has_value()) {
    std::fprintf(stderr, "warning: preinstall barrier timed out on s1\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tango;
  const std::size_t n_flows = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;

  auto run = [&](bool use_tango) {
    Testbed tb;
    build(tb);
    preinstall_old_paths(tb, n_flows);

    core::TangoController controller(tb.net);
    std::map<SwitchId, core::OpCostEstimate> costs;
    if (use_tango) {
      for (const SwitchId id : {tb.ids.s1, tb.ids.s3}) {
        core::LearnOptions options;
        options.size.max_rules = 1024;
        options.infer_policy = false;
        costs[id] = controller.learn(id, options).costs;
        core::ProbeEngine(tb.net, id).clear_rules();
      }
      preinstall_old_paths(tb, n_flows);  // learning cleared the tables
    }

    // The failure: s1-s2 goes down; the controller computes the detour and
    // emits the recovery DAG.
    tb.net.topology().set_link_state(tb.s1s2_link, false);
    const auto detour = tb.net.topology().shortest_path(0, 1);
    if (detour.size() != 3) {
      std::fprintf(stderr, "unexpected detour length\n");
      return SimDuration{};
    }

    Rng rng(7);
    auto dag = workload::link_failure_scenario(tb.ids, n_flows, rng);

    // Push the recovery as a transaction: pre-state journaled, cookies
    // stamped, crash reconciliation armed (dormant on this clean channel).
    auto txn = controller.begin_update(std::move(dag));
    const sched::TransactionReport* report = nullptr;
    if (use_tango) {
      sched::BasicTangoScheduler scheduler(costs);
      report = &txn.commit(scheduler);
    } else {
      sched::DionysusScheduler scheduler;
      report = &txn.commit(scheduler);
    }

    // Post-commit consistency check: each flow's packet must hit the rule
    // this transaction wrote on s1 (cookie check catches a lost MOD or a
    // stale higher-priority leftover shadowing it).
    std::vector<sched::FlowCheck> flows;
    for (std::uint32_t i = 0; i < n_flows; ++i) {
      sched::FlowCheck flow;
      flow.ingress = tb.ids.s1;
      flow.packet = core::ProbeEngine::probe_packet(i);
      flow.expected_cookies[tb.ids.s1] = txn.cookie_of(2 * i + 1);  // the MOD
      flows.push_back(flow);
    }
    const auto& verdict = txn.verify(flows);
    if (!report->committed || !verdict.clean()) {
      std::fprintf(stderr,
                   "recovery not clean: committed=%d, %zu violations\n",
                   report->committed ? 1 : 0, verdict.violations.size());
    }
    return report->exec.makespan;
  };

  const auto base = run(false);
  const auto tango_time = run(true);

  std::printf("Link failure: reroute %zu flows s1->s2 onto s1->s3->s2\n", n_flows);
  std::printf("  Dionysus              : %8.2f s\n", base.sec());
  std::printf("  Tango (type+priority) : %8.2f s\n", tango_time.sec());
  std::printf("  improvement           : %7.1f %%\n",
              100.0 * (1.0 - tango_time.sec() / base.sec()));
  return 0;
}
