// ACL deployment: compile a ClassBench-style access-control list into a
// switch-request DAG (Maple-style priority assignment) and deploy it on a
// hardware switch, comparing:
//
//   * priority assignment: topological (minimum distinct values) vs 1-1 R,
//   * consistency: barrier-ordered ("consistent") vs scheduler-free ("fast"),
//   * scheduler: Dionysus vs Tango.
//
// This is the application-level face of the Fig 8/9 experiments, and shows
// the consistency/speed tension the paper's priority patterns navigate.
//
//   $ ./examples/acl_deployment
#include <cstdio>

#include "apps/acl_compiler.h"
#include "apps/flow_monitor.h"
#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"
#include "workload/classbench.h"

int main() {
  using namespace tango;

  const auto rules = workload::generate_classbench(workload::cb3());
  std::printf("ACL: %zu rules (ClassBench-style, nested prefixes)\n\n", rules.size());

  // Learn the switch's costs once.
  std::map<SwitchId, core::OpCostEstimate> costs;
  {
    net::Network net;
    const auto id = net.add_switch(switchsim::profiles::switch1());
    core::TangoController tango(net);
    core::LearnOptions options;
    options.size.max_rules = 1024;
    options.infer_policy = false;
    costs[1] = tango.learn(id, options).costs;
  }

  struct Variant {
    const char* label;
    bool topological;
    bool consistent;
    bool tango;
  };
  const Variant variants[] = {
      {"R priorities,    fast,       Dionysus", false, false, false},
      {"R priorities,    fast,       Tango   ", false, false, true},
      {"topo priorities, fast,       Tango   ", true, false, true},
      {"topo priorities, consistent, Tango   ", true, true, true},
  };

  std::printf("%-42s | install time | distinct prios | barrier edges\n", "variant");
  std::printf("-------------------------------------------+--------------+----------------+--------------\n");

  for (const auto& v : variants) {
    net::Network net;
    const auto id = net.add_switch(switchsim::profiles::switch1());
    apps::AclCompileOptions options;
    options.target = id;
    options.topological = v.topological;
    options.consistent = v.consistent;
    auto compiled = apps::compile_acl(rules, options);

    SimDuration makespan;
    if (v.tango) {
      sched::BasicTangoScheduler scheduler(costs);
      makespan = sched::execute(net, compiled.dag, scheduler).makespan;
    } else {
      sched::DionysusScheduler scheduler;
      makespan = sched::execute(net, compiled.dag, scheduler).makespan;
    }
    std::printf("%-42s | %9.3f s  | %14zu | %zu\n", v.label, makespan.sec(),
                compiled.distinct_priorities, compiled.dependency_edges);
  }

  std::printf(
      "\nReading the table:\n"
      " * Tango beats Dionysus on identical input by installing in ascending\n"
      "   priority order (TCAM appends instead of shifts).\n"
      " * Topological priorities collapse hundreds of distinct values into a\n"
      "   few dozen levels -> same-priority appends, cheaper still.\n"
      " * Consistency costs: barrier edges force higher-priority-first\n"
      "   (descending!) installation of overlapping rules, giving back much\n"
      "   of the win - the tension the paper's scheduler navigates.\n");
  return 0;
}
