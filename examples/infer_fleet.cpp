// Fleet inference: run the full Tango inference pipeline against all four
// switch models from the paper (OVS + three hardware vendors) and print a
// property table — the "understanding challenge" demo.
//
//   $ ./examples/infer_fleet
#include <cstdio>

#include "net/network.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"

int main() {
  using namespace tango;
  namespace profiles = switchsim::profiles;

  net::Network network;
  std::vector<SwitchId> fleet;
  for (const auto& profile : profiles::paper_fleet()) {
    fleet.push_back(network.add_switch(profile));
  }

  core::TangoController tango(network);

  std::printf("%-14s | %-22s | %-28s | %-12s | %s\n", "switch", "layer sizes",
              "cache policy", "tcam mode", "add asc/desc/mod/del (ms)");
  std::printf("---------------+------------------------+------------------------------+--------------+--------------------------\n");

  for (const SwitchId id : fleet) {
    core::LearnOptions options;
    options.size.max_rules = 4096;
    options.infer_width = true;  // also probe the TCAM operating mode
    const auto& know = tango.learn(id, options);

    std::string layers;
    for (std::size_t i = 0; i < know.sizes.layer_sizes.size(); ++i) {
      if (!layers.empty()) layers += ", ";
      const bool unbounded = know.sizes.hit_rule_cap &&
                             i + 1 == know.sizes.layer_sizes.size();
      layers += (unbounded ? ">" : "") +
                std::to_string(static_cast<long long>(know.sizes.layer_sizes[i] + 0.5));
    }
    const std::string policy = know.policy.has_value()
                                   ? know.policy->policy.describe()
                                   : "(n/a)";
    const std::string mode =
        know.width.has_value()
            ? (know.width->unbounded ? "software" : tables::to_string(know.width->mode))
            : "(skipped)";
    std::printf("%-14s | %-22s | %-28s | %-12s | %.2f / %.2f / %.2f / %.2f\n",
                know.name.c_str(), layers.c_str(), policy.c_str(), mode.c_str(),
                know.costs.add_ascending_ms, know.costs.add_descending_ms,
                know.costs.mod_ms, know.costs.del_ms);
  }

  std::printf("\nGround truth (Table 1 of the paper): OVS unbounded software;"
              "\n  Switch #1: 4K/2K TCAM + software FIFO buffer;"
              "\n  Switch #2: 2560-entry double-wide TCAM only;"
              "\n  Switch #3: 767/383-entry adaptive TCAM only.\n");
  return 0;
}
