// Three tenants sharing one B4 fabric through the multi-tenant intent
// service: bounded admission, coalescing, conflict-aware concurrent
// dispatch, and a fairness report.
//
//   $ ./examples/multi_tenant
//
// Each tenant installs forwarding paths across its own slice of the 12
// B4 sites, expressed as intents (one transactional RequestDag each). The
// walk-through shows every service mechanism once:
//
//   * tenants A/B/C submit path intents over disjoint rule spaces — the
//     ConflictGraph lets their commits interleave in virtual time;
//   * tenant B supersedes one of its own queued path choices via a
//     coalesce key (only the replacement is ever installed);
//   * tenant C overruns its bounded queue and gets a typed kQueueFull
//     rejection (backpressure, not an error);
//   * tenants A and B both try to claim the same aggregate prefix on a
//     shared site — a true conflict, so those two intents serialize.
#include <cstdio>
#include <vector>

#include "net/b4.h"
#include "net/network.h"
#include "scheduler/schedulers.h"
#include "service/service.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"

namespace {

using namespace tango;

// Tenant t's flow i on path `p`: a /32 inside the tenant's own /16.
of::Match tenant_flow(std::uint32_t t, std::uint32_t p, std::uint32_t i) {
  of::Match m;
  m.with_dl_type(0x0800);
  m.set_nw_dst_prefix((10u << 24) | ((t + 1) << 16) | (p << 8) | i, 32);
  return m;
}

// One path intent: `flows` rules at every hop, hops chained so a rule is
// never live upstream before its downstream hop can forward it.
service::Intent path_intent(std::uint32_t tenant,
                            const std::vector<SwitchId>& hops,
                            std::uint32_t path_id, std::uint32_t flows,
                            std::uint64_t coalesce_key = 0) {
  service::Intent intent;
  intent.tenant = tenant;
  intent.coalesce_key = coalesce_key;
  std::vector<std::size_t> prev_hop;
  for (auto hop = hops.rbegin(); hop != hops.rend(); ++hop) {
    std::vector<std::size_t> this_hop;
    for (std::uint32_t i = 0; i < flows; ++i) {
      sched::SwitchRequest req;
      req.location = *hop;
      req.type = sched::RequestType::kAdd;
      req.priority = static_cast<std::uint16_t>(200 + i);
      req.match = tenant_flow(tenant, path_id, i);
      req.actions = of::output_to(2);
      const std::size_t id = intent.dag.add(std::move(req));
      if (i < prev_hop.size()) intent.dag.add_dependency(prev_hop[i], id);
      this_hop.push_back(id);
    }
    prev_hop = this_hop;
  }
  return intent;
}

// A claim on a whole aggregate /16 at one site — the kind of footprint
// that genuinely conflicts across tenants.
service::Intent aggregate_claim(std::uint32_t tenant, SwitchId site,
                                std::uint16_t priority) {
  service::Intent intent;
  intent.tenant = tenant;
  sched::SwitchRequest req;
  req.location = site;
  req.type = sched::RequestType::kAdd;
  req.priority = priority;
  req.match.set_nw_dst_prefix((192u << 24) | (168u << 16), 16);
  req.actions = of::output_to(3);
  intent.dag.add(std::move(req));
  return intent;
}

const char* tenant_name(std::uint32_t t) {
  static const char* names[] = {"A", "B", "C"};
  return t < 3 ? names[t] : "?";
}

}  // namespace

int main() {
  net::Network net;
  auto profile = switchsim::profiles::switch1();
  profile.costs.jitter_frac = 0;
  profile.paths.jitter_frac = 0;
  const std::vector<SwitchId> sites = net::build_b4(net, profile);

  core::TangoController controller(net);
  service::ServiceOptions options;
  options.per_tenant_queue_cap = 4;
  options.max_concurrent = 4;
  options.txn_id_base = 0x100;
  service::IntentService service(net, controller, options);

  // Tenant slices of the B4 sites (the shared site is where the aggregate
  // conflict below happens).
  const std::vector<SwitchId> path_a = {sites[0], sites[1], sites[4]};
  const std::vector<SwitchId> path_b = {sites[2], sites[3], sites[4]};
  const std::vector<SwitchId> path_c = {sites[7], sites[8], sites[11]};

  std::printf("== submission ==\n");

  // Tenants A and B race for the same aggregate on the shared site,
  // first thing: both claims sit at their queue heads in the very first
  // dispatch round, so the ConflictGraph provably blocks one of them
  // while the other runs (it shows up in conflict_blocks below).
  service.submit(aggregate_claim(0, sites[4], 500));
  service.submit(aggregate_claim(1, sites[4], 501));

  for (std::uint32_t p = 0; p < 2; ++p) {
    service.submit(path_intent(0, path_a, p, 4));
    service.submit(path_intent(1, path_b, p, 4));
    service.submit(path_intent(2, path_c, p, 4));
  }

  // Tenant B reconsiders path 1: same coalesce key, so the queued payload
  // is replaced in place — the fabric only ever sees the second choice.
  service.submit(path_intent(1, path_b, /*path_id=*/1, 4, /*coalesce_key=*/9));
  const auto replaced =
      service.submit(path_intent(1, path_b, /*path_id=*/7, 4, /*coalesce_key=*/9));
  std::printf("tenant B path revision: %s\n",
              replaced.coalesced ? "coalesced onto the queued intent"
                                 : "queued separately (unexpected)");

  // Tenant C floods its queue; the cap pushes back with a typed rejection.
  service::SubmitResult last;
  for (std::uint32_t p = 2; p < 6; ++p) {
    last = service.submit(path_intent(2, path_c, p, 4));
  }
  std::printf("tenant C over-submission: %s\n",
              last.accepted() ? "accepted (unexpected)"
                              : to_string(last.error).c_str());

  std::printf("\n== dispatch ==\n");
  sched::DionysusScheduler scheduler;
  service.run(scheduler);

  const service::ServiceReport& report = service.report();
  std::printf("completed %zu of %zu submitted (%zu coalesced, %zu rejected)\n",
              report.completed, report.submitted, report.coalesced,
              report.rejected);
  std::printf(
      "concurrency: peak %zu, busy-time average %.2f; %zu dispatch pass(es) "
      "blocked on a conflict\n",
      report.max_concurrency, report.avg_concurrency, report.conflict_blocks);
  std::printf("fairness (Jain over per-tenant requests served): %.3f\n",
              report.fairness_index);
  std::printf("makespan %.3f ms of virtual time\n\n", report.makespan.ms());

  for (const auto& [tenant, stats] : report.tenants) {
    std::printf(
        "tenant %s: %zu submitted, %zu completed, %zu coalesced, %zu "
        "rejected; latency p50 %.2f ms, p95 %.2f ms; max queue wait %.2f "
        "ms\n",
        tenant_name(tenant), stats.submitted, stats.completed, stats.coalesced,
        stats.rejected, stats.latency_p50_ms, stats.latency_p95_ms,
        stats.max_queue_wait.ms());
  }

  // The service interleaved everything that could interleave and
  // serialized the one true conflict; both claims still landed.
  const auto agg = net.sw(sites[4]).flow_stats(of::Match::any());
  std::size_t claims = 0;
  for (const auto& entry : agg.entries) {
    if (entry.priority >= 500) ++claims;
  }
  std::printf("\naggregate claims on shared site: %zu (both tenants, committed "
              "in sequence)\n", claims);
  return report.completed == report.dispatched ? 0 : 1;
}
