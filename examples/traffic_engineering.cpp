// Traffic engineering on the hardware testbed triangle (paper §7.2):
// a traffic-matrix change produces a DAG of ADD/MOD/DEL requests across
// three switches; we execute it under the Dionysus baseline and under the
// Tango scheduler (with costs learned by probing) and compare makespans.
//
//   $ ./examples/traffic_engineering [n_requests]
#include <cstdio>
#include <cstdlib>

#include "net/network.h"
#include "scheduler/executor.h"
#include "scheduler/schedulers.h"
#include "switchsim/profiles.h"
#include "tango/probe_engine.h"
#include "tango/tango.h"
#include "workload/scenarios.h"

namespace {

// Build the paper's triangle: s1, s2 from Vendor #1 and s3 from Vendor #3.
tango::workload::TestbedIds build_testbed(tango::net::Network& net) {
  namespace profiles = tango::switchsim::profiles;
  tango::workload::TestbedIds tb;
  tb.s1 = net.add_switch(profiles::switch1());
  tb.s2 = net.add_switch(profiles::switch1());
  tb.s3 = net.add_switch(profiles::switch3());
  net.topology().add_link(0, 1);
  net.topology().add_link(1, 2);
  net.topology().add_link(0, 2);
  return tb;
}

// The pre-change TE state: `existing` flows routed through every switch,
// in a priority band below the one the update will use.
void preinstall_state(tango::net::Network& net,
                      const tango::workload::TestbedIds& tb,
                      std::size_t existing) {
  for (const auto id : {tb.s1, tb.s2, tb.s3}) {
    tango::core::ProbeEngine probe(net, id);
    for (std::uint32_t i = 0; i < existing; ++i) {
      probe.install(i, static_cast<std::uint16_t>(100 + (i * 7) % 900));
    }
    // Bounded barrier: a wedged agent shows up as a warning, not a hang.
    if (!net.try_barrier_sync(id, tango::millis(500)).has_value()) {
      std::fprintf(stderr, "warning: preinstall barrier timed out on switch %llu\n",
                   static_cast<unsigned long long>(id));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tango;
  const std::size_t n_requests = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 800;

  const std::size_t existing = n_requests / 2;  // pre-change TE state

  // --- Baseline run: Dionysus, oblivious to switch diversity --------------
  SimDuration dionysus_time;
  {
    net::Network net;
    const auto tb = build_testbed(net);
    preinstall_state(net, tb, existing);
    Rng rng(42);
    auto dag = workload::traffic_engineering_scenario(tb, n_requests, 2, 1, 1,
                                                      rng, 100000, existing);
    sched::DionysusScheduler dionysus;
    dionysus_time = sched::execute(net, dag, dionysus).makespan;
  }

  // --- Tango run: learn each switch first, then schedule with the costs ---
  SimDuration tango_time;
  {
    net::Network net;
    const auto tb = build_testbed(net);
    core::TangoController tango(net);
    std::map<SwitchId, core::OpCostEstimate> costs;
    for (const SwitchId id : {tb.s1, tb.s2, tb.s3}) {
      core::LearnOptions options;
      options.size.max_rules = 1024;
      options.infer_policy = false;  // the scheduler only needs op costs
      costs[id] = tango.learn(id, options).costs;
      core::ProbeEngine(net, id).clear_rules();
    }
    std::printf("Learned per-op costs (ms/rule):\n");
    for (const auto& [id, c] : costs) {
      std::printf("  %-14s add asc %.2f, desc %.2f, mod %.2f, del %.2f\n",
                  net.sw(id).profile().name.c_str(), c.add_ascending_ms,
                  c.add_descending_ms, c.mod_ms, c.del_ms);
    }

    preinstall_state(net, tb, existing);
    Rng rng(42);  // identical scenario
    auto dag = workload::traffic_engineering_scenario(tb, n_requests, 2, 1, 1,
                                                      rng, 100000, existing);
    sched::BasicTangoScheduler scheduler(costs);
    tango_time = sched::execute(net, dag, scheduler).makespan;
  }

  std::printf("\nTE update with %zu requests over {s1,s2: vendor1, s3: vendor3}:\n",
              n_requests);
  std::printf("  Dionysus (critical path)   : %8.2f s\n", dionysus_time.sec());
  std::printf("  Tango (type+priority)      : %8.2f s\n", tango_time.sec());
  std::printf("  improvement                : %7.1f %%\n",
              100.0 * (1.0 - tango_time.sec() / dionysus_time.sec()));
  return 0;
}
