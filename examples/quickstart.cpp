// Quickstart: stand up a simulated hardware switch, let Tango infer its
// properties, and print what it learned.
//
//   $ ./examples/quickstart
//
// This is the 60-second tour of the API:
//   1. Build a Network and add switches (vendor profiles or custom).
//   2. Point a TangoController at it and call learn().
//   3. Read back table sizes, the cache policy, and per-op costs.
#include <cstdio>

#include "net/network.h"
#include "switchsim/profiles.h"
#include "tango/tango.h"

int main() {
  using namespace tango;

  // A network with one switch that keeps a 512-entry TCAM managed by an
  // LRU policy over an unbounded software table — the kind of internals a
  // vendor never documents.
  net::Network network;
  const SwitchId sw = network.add_switch(switchsim::profiles::policy_cache(
      "mystery-switch", {512}, tables::LexCachePolicy::lru()));

  core::TangoController tango(network);

  core::LearnOptions options;
  options.size.max_rules = 1536;  // probing budget

  std::printf("Probing %s ...\n",
              network.sw(sw).profile().name.c_str());
  const auto& knowledge = tango.learn(sw, options);

  std::printf("\nWhat Tango inferred:\n");
  std::printf("  flow-table layers : %zu\n", knowledge.sizes.clusters.size());
  for (std::size_t i = 0; i < knowledge.sizes.layer_sizes.size(); ++i) {
    const bool unbounded = knowledge.sizes.hit_rule_cap &&
                           i + 1 == knowledge.sizes.layer_sizes.size();
    std::printf("  layer %zu size      : %s%.0f   (rtt ~%.3f ms)\n", i,
                unbounded ? ">" : "", knowledge.sizes.layer_sizes[i],
                knowledge.sizes.clusters[i].center);
  }
  if (knowledge.policy.has_value()) {
    std::printf("  cache policy      : %s\n",
                knowledge.policy->policy.describe().c_str());
  }
  std::printf("  add asc/desc      : %.3f / %.3f ms per rule\n",
              knowledge.costs.add_ascending_ms, knowledge.costs.add_descending_ms);
  std::printf("  mod / del         : %.3f / %.3f ms per rule\n",
              knowledge.costs.mod_ms, knowledge.costs.del_ms);
  std::printf("  priority matters? : %s\n",
              knowledge.costs.priority_sensitive() ? "yes" : "no");

  std::printf("\nGround truth (the simulator's actual config): 512-entry "
              "LRU-managed fast table over unbounded software.\n");
  std::printf("Probing overhead: %llu control messages, %llu probe packets.\n",
              static_cast<unsigned long long>(knowledge.sizes.messages_used),
              static_cast<unsigned long long>(knowledge.sizes.probe_packets));
  return 0;
}
