// service_soak: drive the multi-tenant chaos harness across a seed range
// and emit a machine-readable run report.
//
//   service_soak --seeds 1-20 --tenants 4 --intents 3
//   service_soak --seeds 7 --no-faults --verbose
//
// Every run is deterministic: a (seed, tenants, intents, faults) tuple
// identifies one IntentService run — a scripted multi-tenant submission
// schedule with a crash on the victim tenant's private switch — and the
// 64-bit fingerprint (service tallies + per-intent outcomes + fault stats +
// final tables + final virtual clock) makes bit-identical replay a single
// integer comparison. The isolation oracles (chaos/tenant_isolation.h)
// judge each run; a SERVICE_soak.json run report (tango.run_report.v1)
// summarizes the sweep, including how many runs actually exercised a
// victim rollback (the scenario the isolation oracle exists for).
//
// Exit status: 0 = all runs clean, 1 = violations found, 2 = usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "chaos/tenant_isolation.h"
#include "common/logging.h"
#include "telemetry/run_report.h"

namespace {

using namespace tango;  // tool code: brevity over namespace hygiene

struct Args {
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 20;
  std::uint32_t tenants = 3;
  std::uint32_t intents = 3;
  bool faults = true;
  std::string out_dir = ".";
  bool verbose = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: service_soak [--seeds A-B] [--tenants N] [--intents N]\n"
               "                    [--no-faults] [--out DIR] [--verbose]\n");
}

bool parse_seeds(const std::string& s, Args& args) {
  const auto dash = s.find('-');
  if (dash == std::string::npos) {
    args.seed_lo = args.seed_hi = std::strtoull(s.c_str(), nullptr, 0);
    return args.seed_lo > 0;
  }
  args.seed_lo = std::strtoull(s.substr(0, dash).c_str(), nullptr, 0);
  args.seed_hi = std::strtoull(s.substr(dash + 1).c_str(), nullptr, 0);
  return args.seed_lo > 0 && args.seed_hi >= args.seed_lo;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = value();
      if (v == nullptr || !parse_seeds(v, args)) return false;
    } else if (arg == "--tenants") {
      const char* v = value();
      if (v == nullptr) return false;
      args.tenants = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--intents") {
      const char* v = value();
      if (v == nullptr) return false;
      args.intents = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--no-faults") {
      args.faults = false;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      args.out_dir = v;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  log::set_threshold(args.verbose ? log::Level::kInfo : log::Level::kError);
  log::set_rate_limit(20);

  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "service_soak: cannot create %s: %s\n",
                 args.out_dir.c_str(), ec.message().c_str());
    return 2;
  }

  telemetry::RunReport report("SERVICE_soak");
  std::size_t runs = 0;
  std::size_t violations_found = 0;
  std::size_t rollback_runs = 0;

  for (std::uint64_t seed = args.seed_lo; seed <= args.seed_hi; ++seed) {
    chaos::TenantChaosSpec spec;
    spec.seed = seed;
    spec.n_tenants = args.tenants;
    spec.intents_per_tenant = args.intents;
    spec.faults = args.faults;
    const auto result = chaos::run_tenant_chaos(spec);
    ++runs;
    if (result.rollbacks > 0) ++rollback_runs;

    report.add_row()
        .col("seed", static_cast<double>(seed))
        .col("tenants", static_cast<double>(result.spec.n_tenants))
        .col("violations", static_cast<double>(result.violations.size()))
        .col("rollbacks", static_cast<double>(result.rollbacks))
        .col("fairness", result.report.fairness_index)
        .col("max_concurrency",
             static_cast<double>(result.report.max_concurrency))
        .col("makespan_ns", static_cast<double>(result.report.makespan.ns()));

    if (result.ok()) {
      if (args.verbose) {
        std::printf(
            "ok    seed %llu: %zu intents committed, %zu rollback(s), "
            "fairness %.3f, fp 0x%016llx\n",
            static_cast<unsigned long long>(seed), result.report.completed,
            result.rollbacks, result.report.fairness_index,
            static_cast<unsigned long long>(result.fingerprint));
      }
      continue;
    }
    ++violations_found;
    std::printf("FAIL  seed %llu: %zu violation(s)\n",
                static_cast<unsigned long long>(seed),
                result.violations.size());
    for (const auto& v : result.violations) {
      std::printf("      %s\n", chaos::to_string(v).c_str());
    }
  }

  log::flush_suppressed();

  report.set_result("service.runs", static_cast<double>(runs));
  report.set_result("service.violations",
                    static_cast<double>(violations_found));
  report.set_result("service.rollback_runs",
                    static_cast<double>(rollback_runs));
  report.set_result("service.tenants", static_cast<double>(args.tenants));
  report.set_result("service.faults", args.faults ? 1.0 : 0.0);
  report.set_result("service.seed_lo", static_cast<double>(args.seed_lo));
  report.set_result("service.seed_hi", static_cast<double>(args.seed_hi));
  const std::string report_path = args.out_dir + "/SERVICE_soak.json";
  if (!report.write(report_path)) {
    std::fprintf(stderr, "service_soak: cannot write %s\n",
                 report_path.c_str());
  }

  std::printf(
      "%zu run(s), %zu with violations, %zu exercised a rollback; report at "
      "%s\n",
      runs, violations_found, rollback_runs, report_path.c_str());
  return violations_found == 0 ? 0 : 1;
}
