// service_soak: drive the multi-tenant chaos harness across a seed range
// and emit a machine-readable run report.
//
//   service_soak --seeds 1-20 --tenants 4 --intents 3
//   service_soak --seeds 1-200 --workers 8     # parallel seed sweep
//   service_soak --seeds 7 --no-faults --verbose
//
// Every run is deterministic: a (seed, tenants, intents, faults) tuple
// identifies one IntentService run — a scripted multi-tenant submission
// schedule with a crash on the victim tenant's private switch — and the
// 64-bit fingerprint (service tallies + per-intent outcomes + fault stats +
// final tables + final virtual clock) makes bit-identical replay a single
// integer comparison. The isolation oracles (chaos/tenant_isolation.h)
// judge each run; a SERVICE_soak.json run report (tango.run_report.v1)
// summarizes the sweep, including how many runs actually exercised a
// victim rollback (the scenario the isolation oracle exists for).
//
// The sweep runs on runner::run_service_sweep: `--workers N` fans seeds
// over a thread pool while report and console output stay byte-identical
// to a serial run; `--wall` opts into nondeterministic per-run wall_ms.
//
// Exit status: 0 = all runs clean, 1 = violations found, 2 = usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "common/logging.h"
#include "runner/soak.h"

namespace {

using namespace tango;  // tool code: brevity over namespace hygiene

struct Args {
  runner::ServiceSweepConfig sweep;
  runner::SweepOptions opt;
  std::string out_dir = ".";
};

void usage() {
  std::fprintf(stderr,
               "usage: service_soak [--seeds A-B] [--tenants N] [--intents N]\n"
               "                    [--no-faults] [--out DIR] [--workers N]\n"
               "                    [--wall] [--verbose]\n");
}

bool parse_seeds(const std::string& s, runner::ServiceSweepConfig& cfg) {
  const auto dash = s.find('-');
  if (dash == std::string::npos) {
    cfg.seed_lo = cfg.seed_hi = std::strtoull(s.c_str(), nullptr, 0);
    return cfg.seed_lo > 0;
  }
  cfg.seed_lo = std::strtoull(s.substr(0, dash).c_str(), nullptr, 0);
  cfg.seed_hi = std::strtoull(s.substr(dash + 1).c_str(), nullptr, 0);
  return cfg.seed_lo > 0 && cfg.seed_hi >= cfg.seed_lo;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = value();
      if (v == nullptr || !parse_seeds(v, args.sweep)) return false;
    } else if (arg == "--tenants") {
      const char* v = value();
      if (v == nullptr) return false;
      args.sweep.tenants =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--intents") {
      const char* v = value();
      if (v == nullptr) return false;
      args.sweep.intents =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--no-faults") {
      args.sweep.faults = false;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      args.out_dir = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return false;
      args.opt.workers = static_cast<std::size_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--wall") {
      args.opt.wall = true;
    } else if (arg == "--verbose") {
      args.opt.verbose = true;
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  log::set_threshold(args.opt.verbose ? log::Level::kInfo : log::Level::kError);
  log::set_rate_limit(20);

  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "service_soak: cannot create %s: %s\n",
                 args.out_dir.c_str(), ec.message().c_str());
    return 2;
  }

  auto outcome = runner::run_service_sweep(args.sweep, args.opt);

  std::fputs(outcome.text.c_str(), stdout);
  std::fputs(outcome.errors.c_str(), stderr);
  log::flush_suppressed();

  const std::string report_path = args.out_dir + "/SERVICE_soak.json";
  if (!outcome.report.write(report_path)) {
    std::fprintf(stderr, "service_soak: cannot write %s\n",
                 report_path.c_str());
  }

  std::printf(
      "%zu run(s), %zu with violations, %zu exercised a rollback; report at "
      "%s\n",
      outcome.runs, outcome.violations, outcome.rollback_runs,
      report_path.c_str());
  return outcome.ok() ? 0 : 1;
}
