// chaos_soak: drive the chaos harness across a seed range, shrink any
// violation to a minimal reproducer, and emit machine-readable artifacts.
//
//   chaos_soak --seeds 1-20 --horizon short --workload all --policy both
//   chaos_soak --replay repro_seed42.json          # re-execute a repro file
//
// Every run is deterministic: a seed identifies a fault schedule, and the
// run's 64-bit fingerprint (counters + fault stats + final tables + final
// virtual clock) is printed so bit-identical replay is checkable by eye or
// by CI. On violation the schedule is delta-debugged down to a locally
// minimal event list and written as a chaos_repro.v1 JSON file into --out;
// a CHAOS_soak.json run report (tango.run_report.v1) summarizes the sweep.
//
// Exit status: 0 = all runs clean (or replay clean), 1 = violations found
// (or replay reproduced its violation), 2 = usage/file errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/ha_harness.h"
#include "chaos/harness.h"
#include "chaos/schedule.h"
#include "chaos/shrinker.h"
#include "common/logging.h"
#include "telemetry/run_report.h"

namespace {

using namespace tango;  // tool code: brevity over namespace hygiene

struct Args {
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 20;
  chaos::Horizon horizon = chaos::Horizon::kShort;
  std::vector<chaos::Workload> workloads = {
      chaos::Workload::kFig10, chaos::Workload::kTrafficEngineering,
      chaos::Workload::kAcl};
  std::vector<sched::RecoveryPolicy> policies = {
      sched::RecoveryPolicy::kRollForward, sched::RecoveryPolicy::kRollBack};
  std::string replay;
  std::string out_dir = ".";
  bool shrink = true;
  bool verbose = false;
  bool misbehavior = false;
  /// Controller-side faults: sweep run_ha_chaos (scenario = seed % 5)
  /// instead of the switch-side wire harness; emits HA_soak.json.
  bool controller_faults = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: chaos_soak [--seeds A-B] [--horizon short|medium|long]\n"
               "                  [--workload fig10|te|acl|all]\n"
               "                  [--policy forward|rollback|both]\n"
               "                  [--replay FILE] [--out DIR] [--no-shrink]\n"
               "                  [--misbehavior] [--controller-faults]\n"
               "                  [--verbose]\n");
}

bool parse_seeds(const std::string& s, Args& args) {
  const auto dash = s.find('-');
  if (dash == std::string::npos) {
    args.seed_lo = args.seed_hi = std::strtoull(s.c_str(), nullptr, 0);
    return args.seed_lo > 0;
  }
  args.seed_lo = std::strtoull(s.substr(0, dash).c_str(), nullptr, 0);
  args.seed_hi = std::strtoull(s.substr(dash + 1).c_str(), nullptr, 0);
  return args.seed_lo > 0 && args.seed_hi >= args.seed_lo;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = value();
      if (v == nullptr || !parse_seeds(v, args)) return false;
    } else if (arg == "--horizon") {
      const char* v = value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "short") == 0) args.horizon = chaos::Horizon::kShort;
      else if (std::strcmp(v, "medium") == 0) args.horizon = chaos::Horizon::kMedium;
      else if (std::strcmp(v, "long") == 0) args.horizon = chaos::Horizon::kLong;
      else return false;
    } else if (arg == "--workload") {
      const char* v = value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "fig10") == 0) {
        args.workloads = {chaos::Workload::kFig10};
      } else if (std::strcmp(v, "te") == 0) {
        args.workloads = {chaos::Workload::kTrafficEngineering};
      } else if (std::strcmp(v, "acl") == 0) {
        args.workloads = {chaos::Workload::kAcl};
      } else if (std::strcmp(v, "all") != 0) {
        return false;
      }
    } else if (arg == "--policy") {
      const char* v = value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "forward") == 0) {
        args.policies = {sched::RecoveryPolicy::kRollForward};
      } else if (std::strcmp(v, "rollback") == 0) {
        args.policies = {sched::RecoveryPolicy::kRollBack};
      } else if (std::strcmp(v, "both") != 0) {
        return false;
      }
    } else if (arg == "--replay") {
      const char* v = value();
      if (v == nullptr) return false;
      args.replay = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      args.out_dir = v;
    } else if (arg == "--no-shrink") {
      args.shrink = false;
    } else if (arg == "--misbehavior") {
      args.misbehavior = true;
    } else if (arg == "--controller-faults") {
      args.controller_faults = true;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else {
      return false;
    }
  }
  return true;
}

std::string run_label(const chaos::ChaosSchedule& s) {
  return "seed " + std::to_string(s.spec.seed) + " " +
         chaos::to_string(s.spec.workload) + "/" +
         sched::to_string(s.spec.policy);
}

int replay_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "chaos_soak: cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto parsed = chaos::parse_repro(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "chaos_soak: %s: %s\n", path.c_str(),
                 parsed.error().c_str());
    return 2;
  }
  const auto& repro = parsed.value();
  const auto result = chaos::run_chaos(repro.schedule);
  std::printf("replay %s: %zu violation(s), fingerprint 0x%016llx\n",
              run_label(repro.schedule).c_str(), result.violations.size(),
              static_cast<unsigned long long>(result.fingerprint));
  for (const auto& v : result.violations) {
    std::printf("  %s\n", chaos::to_string(v).c_str());
  }
  if (repro.fingerprint != 0 && repro.fingerprint != result.fingerprint) {
    std::printf("  note: fingerprint differs from capture (0x%016llx) — the\n"
                "  code under test changed since the repro was recorded\n",
                static_cast<unsigned long long>(repro.fingerprint));
  }
  return result.ok() ? 0 : 1;
}

/// Controller-fault sweep: each seed picks a failover scenario (seed % 5) on
/// top of the usual workload/policy grid; every run must hold the HA oracles
/// (exactly-one-active-epoch, no stale-epoch mutation, no committed txn
/// lost, takeover convergence). Emits HA_soak.json.
int run_controller_faults(const Args& args) {
  telemetry::RunReport report("HA_soak");
  std::size_t runs = 0;
  std::size_t violations_found = 0;
  std::uint64_t failovers = 0;
  std::uint64_t stale_rejections = 0;
  double takeover_ms_max = 0;
  double replication_lag_ns_max = 0;

  for (std::uint64_t seed = args.seed_lo; seed <= args.seed_hi; ++seed) {
    for (const auto workload : args.workloads) {
      for (const auto policy : args.policies) {
        chaos::HaChaosSpec spec;
        spec.seed = seed;
        spec.workload = workload;
        spec.policy = policy;
        spec.horizon = args.horizon;
        spec.scenario = chaos::scenario_of(seed);
        const auto result = chaos::run_ha_chaos(spec);
        ++runs;

        double takeover_ms = 0;
        for (const auto& rep : result.takeovers) {
          takeover_ms = std::max(takeover_ms, rep.takeover_ms);
        }
        const auto lag_ns = static_cast<double>(
            result.standby.max_replication_lag.ns());
        failovers += result.ha.failover_count;
        stale_rejections += result.stale_epoch_rejections;
        takeover_ms_max = std::max(takeover_ms_max, takeover_ms);
        replication_lag_ns_max = std::max(replication_lag_ns_max, lag_ns);

        report.add_row()
            .col("seed", static_cast<double>(seed))
            .col("workload", chaos::to_string(workload))
            .col("policy", sched::to_string(policy))
            .col("scenario", chaos::to_string(spec.scenario))
            .col("failovers", static_cast<double>(result.ha.failover_count))
            .col("takeover_ms", takeover_ms)
            .col("replication_lag_ns", lag_ns)
            .col("stale_epoch_rejections",
                 static_cast<double>(result.stale_epoch_rejections))
            .col("violations", static_cast<double>(result.violations.size()));
        if (result.ok()) {
          if (args.verbose) {
            std::printf(
                "ok    seed %llu %s/%s %s (fp 0x%016llx)\n",
                static_cast<unsigned long long>(seed),
                chaos::to_string(workload).c_str(),
                sched::to_string(policy).c_str(),
                chaos::to_string(spec.scenario).c_str(),
                static_cast<unsigned long long>(result.fingerprint));
          }
          continue;
        }
        ++violations_found;
        std::printf("FAIL  seed %llu %s/%s %s: %zu violation(s)\n",
                    static_cast<unsigned long long>(seed),
                    chaos::to_string(workload).c_str(),
                    sched::to_string(policy).c_str(),
                    chaos::to_string(spec.scenario).c_str(),
                    result.violations.size());
        for (const auto& v : result.violations) {
          std::printf("      %s\n", chaos::to_string(v).c_str());
        }
      }
    }
  }

  log::flush_suppressed();

  report.set_result("ha.runs", static_cast<double>(runs));
  report.set_result("ha.violations", static_cast<double>(violations_found));
  report.set_result("ha.failover_count", static_cast<double>(failovers));
  report.set_result("ha.takeover_ms_max", takeover_ms_max);
  report.set_result("ha.replication_lag_ns_max", replication_lag_ns_max);
  report.set_result("ha.stale_epoch_rejections",
                    static_cast<double>(stale_rejections));
  report.set_result("ha.horizon", chaos::to_string(args.horizon));
  report.set_result("ha.seed_lo", static_cast<double>(args.seed_lo));
  report.set_result("ha.seed_hi", static_cast<double>(args.seed_hi));
  const std::string report_path = args.out_dir + "/HA_soak.json";
  if (!report.write(report_path)) {
    std::fprintf(stderr, "chaos_soak: cannot write %s\n", report_path.c_str());
  }

  std::printf("%zu HA run(s), %zu with violations; report at %s\n", runs,
              violations_found, report_path.c_str());
  return violations_found == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  log::set_threshold(args.verbose ? log::Level::kInfo : log::Level::kError);
  // Fault storms repeat the same few lines thousands of times; cap each
  // message family and account for the rest in flush summaries.
  log::set_rate_limit(20);

  if (!args.replay.empty()) {
    const int rc = replay_file(args.replay);
    log::flush_suppressed();
    return rc;
  }

  std::error_code ec;
  std::filesystem::create_directories(args.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "chaos_soak: cannot create %s: %s\n",
                 args.out_dir.c_str(), ec.message().c_str());
    return 2;
  }

  if (args.controller_faults) return run_controller_faults(args);

  telemetry::RunReport report("CHAOS_soak");
  std::size_t runs = 0;
  std::size_t violations_found = 0;
  std::size_t repros_written = 0;

  for (std::uint64_t seed = args.seed_lo; seed <= args.seed_hi; ++seed) {
    for (const auto workload : args.workloads) {
      for (const auto policy : args.policies) {
        chaos::ChaosSpec spec;
        spec.seed = seed;
        spec.workload = workload;
        spec.policy = policy;
        spec.horizon = args.horizon;
        spec.misbehavior = args.misbehavior;
        const auto schedule = chaos::generate_schedule(spec);
        auto result = chaos::run_chaos(schedule);
        ++runs;

        auto& row = report.add_row()
                        .col("seed", static_cast<double>(seed))
                        .col("workload", chaos::to_string(workload))
                        .col("policy", sched::to_string(policy))
                        .col("events", static_cast<double>(schedule.events.size()))
                        .col("violations",
                             static_cast<double>(result.violations.size()))
                        .col("makespan_ns",
                             static_cast<double>(result.report.exec.makespan.ns()));
        if (result.ok()) {
          if (args.verbose) {
            std::printf("ok    %s (%zu events, fp 0x%016llx)\n",
                        run_label(schedule).c_str(), schedule.events.size(),
                        static_cast<unsigned long long>(result.fingerprint));
          }
          continue;
        }

        ++violations_found;
        std::printf("FAIL  %s: %zu violation(s)\n", run_label(schedule).c_str(),
                    result.violations.size());
        for (const auto& v : result.violations) {
          std::printf("      %s\n", chaos::to_string(v).c_str());
        }

        chaos::ChaosSchedule minimal = schedule;
        if (args.shrink) {
          const auto shrunk = chaos::shrink_schedule(
              schedule, [](const chaos::ChaosSchedule& candidate) {
                return !chaos::run_chaos(candidate).ok();
              });
          minimal = shrunk.schedule;
          std::printf("      shrunk %zu -> %zu events in %zu probes\n",
                      schedule.events.size(), minimal.events.size(),
                      shrunk.probes);
          // Re-run the minimal schedule so the repro captures ITS
          // fingerprint and violations, not the original's.
          result = chaos::run_chaos(minimal);
        }

        const std::string path =
            args.out_dir + "/chaos_repro_seed" + std::to_string(seed) + "_" +
            chaos::to_string(workload) + "_" +
            (policy == sched::RecoveryPolicy::kRollForward ? "fwd" : "back") +
            ".json";
        std::ofstream repro(path);
        if (repro) {
          repro << chaos::to_repro_json(minimal, result.fingerprint,
                                        result.violation_names());
          ++repros_written;
          std::printf("      repro written to %s\n", path.c_str());
        } else {
          std::fprintf(stderr, "chaos_soak: cannot write %s\n", path.c_str());
        }
        row.col("repro", path);
      }
    }
  }

  log::flush_suppressed();

  report.set_result("chaos.runs", static_cast<double>(runs));
  report.set_result("chaos.violations", static_cast<double>(violations_found));
  report.set_result("chaos.repros_written",
                    static_cast<double>(repros_written));
  report.set_result("chaos.horizon", chaos::to_string(args.horizon));
  report.set_result("chaos.misbehavior", args.misbehavior ? 1.0 : 0.0);
  report.set_result("chaos.seed_lo", static_cast<double>(args.seed_lo));
  report.set_result("chaos.seed_hi", static_cast<double>(args.seed_hi));
  const std::string report_path = args.out_dir + "/CHAOS_soak.json";
  if (!report.write(report_path)) {
    std::fprintf(stderr, "chaos_soak: cannot write %s\n", report_path.c_str());
  }

  std::printf("%zu run(s), %zu with violations; report at %s\n", runs,
              violations_found, report_path.c_str());
  return violations_found == 0 ? 0 : 1;
}
