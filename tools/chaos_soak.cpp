// chaos_soak: drive the chaos harness across a seed range, shrink any
// violation to a minimal reproducer, and emit machine-readable artifacts.
//
//   chaos_soak --seeds 1-20 --horizon short --workload all --policy both
//   chaos_soak --seeds 1-200 --workers 8       # parallel seed sweep
//   chaos_soak --replay repro_seed42.json      # re-execute a repro file
//
// Every run is deterministic: a seed identifies a fault schedule, and the
// run's 64-bit fingerprint (counters + fault stats + final tables + final
// virtual clock) is printed so bit-identical replay is checkable by eye or
// by CI. On violation the schedule is delta-debugged down to a locally
// minimal event list and written as a chaos_repro JSON file into --out;
// a CHAOS_soak.json run report (tango.run_report.v1) summarizes the sweep.
//
// The sweep itself runs on runner::run_chaos_sweep: `--workers N` fans the
// seed grid over a thread pool (each run owns an isolated world) while the
// report, console lines, repro files, and sweep fingerprint stay
// byte-identical to a serial run — the nightly job spot-checks exactly
// that. `--wall` additionally surfaces per-run wall_ms columns (real
// time, nondeterministic, so off by default); `--bench-speedup` runs the
// sweep twice (serial then parallel) and records the measured
// `chaos.speedup_parallel` for tools/bench_compare.py to gate.
//
// Exit status: 0 = all runs clean (or replay clean), 1 = violations found
// (or replay reproduced its violation), 2 = usage/file errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos/schedule.h"
#include "common/logging.h"
#include "runner/soak.h"

namespace {

using namespace tango;  // tool code: brevity over namespace hygiene

struct Args {
  runner::ChaosSweepConfig sweep;
  runner::SweepOptions opt;
  std::string replay;
  /// Measure a serial pass first and report chaos.speedup_parallel.
  bool bench_speedup = false;
  /// Controller-side faults: sweep run_ha_chaos (scenario = seed % 5)
  /// instead of the switch-side wire harness; emits HA_soak.json.
  bool controller_faults = false;
};

void usage() {
  std::fprintf(stderr,
               "usage: chaos_soak [--seeds A-B] [--horizon short|medium|long]\n"
               "                  [--workload fig10|te|acl|all]\n"
               "                  [--policy forward|rollback|both]\n"
               "                  [--replay FILE] [--out DIR] [--no-shrink]\n"
               "                  [--misbehavior] [--controller-faults]\n"
               "                  [--workers N] [--wall] [--bench-speedup]\n"
               "                  [--verbose]\n");
}

bool parse_seeds(const std::string& s, runner::ChaosSweepConfig& cfg) {
  const auto dash = s.find('-');
  if (dash == std::string::npos) {
    cfg.seed_lo = cfg.seed_hi = std::strtoull(s.c_str(), nullptr, 0);
    return cfg.seed_lo > 0;
  }
  cfg.seed_lo = std::strtoull(s.substr(0, dash).c_str(), nullptr, 0);
  cfg.seed_hi = std::strtoull(s.substr(dash + 1).c_str(), nullptr, 0);
  return cfg.seed_lo > 0 && cfg.seed_hi >= cfg.seed_lo;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = value();
      if (v == nullptr || !parse_seeds(v, args.sweep)) return false;
    } else if (arg == "--horizon") {
      const char* v = value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "short") == 0) args.sweep.horizon = chaos::Horizon::kShort;
      else if (std::strcmp(v, "medium") == 0) args.sweep.horizon = chaos::Horizon::kMedium;
      else if (std::strcmp(v, "long") == 0) args.sweep.horizon = chaos::Horizon::kLong;
      else return false;
    } else if (arg == "--workload") {
      const char* v = value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "fig10") == 0) {
        args.sweep.workloads = {chaos::Workload::kFig10};
      } else if (std::strcmp(v, "te") == 0) {
        args.sweep.workloads = {chaos::Workload::kTrafficEngineering};
      } else if (std::strcmp(v, "acl") == 0) {
        args.sweep.workloads = {chaos::Workload::kAcl};
      } else if (std::strcmp(v, "all") != 0) {
        return false;
      }
    } else if (arg == "--policy") {
      const char* v = value();
      if (v == nullptr) return false;
      if (std::strcmp(v, "forward") == 0) {
        args.sweep.policies = {sched::RecoveryPolicy::kRollForward};
      } else if (std::strcmp(v, "rollback") == 0) {
        args.sweep.policies = {sched::RecoveryPolicy::kRollBack};
      } else if (std::strcmp(v, "both") != 0) {
        return false;
      }
    } else if (arg == "--replay") {
      const char* v = value();
      if (v == nullptr) return false;
      args.replay = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return false;
      args.sweep.out_dir = v;
    } else if (arg == "--no-shrink") {
      args.sweep.shrink = false;
    } else if (arg == "--misbehavior") {
      args.sweep.misbehavior = true;
    } else if (arg == "--controller-faults") {
      args.controller_faults = true;
    } else if (arg == "--workers") {
      const char* v = value();
      if (v == nullptr) return false;
      args.opt.workers = static_cast<std::size_t>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--wall") {
      args.opt.wall = true;
    } else if (arg == "--bench-speedup") {
      args.bench_speedup = true;
    } else if (arg == "--verbose") {
      args.opt.verbose = true;
    } else {
      return false;
    }
  }
  return true;
}

std::string run_label(const chaos::ChaosSchedule& s) {
  return "seed " + std::to_string(s.spec.seed) + " " +
         chaos::to_string(s.spec.workload) + "/" +
         sched::to_string(s.spec.policy);
}

int replay_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "chaos_soak: cannot read %s\n", path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const auto parsed = chaos::parse_repro(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "chaos_soak: %s: %s\n", path.c_str(),
                 parsed.error().c_str());
    return 2;
  }
  const auto& repro = parsed.value();
  const auto result = chaos::run_chaos(repro.schedule);
  std::printf("replay %s: %zu violation(s), fingerprint 0x%016llx\n",
              run_label(repro.schedule).c_str(), result.violations.size(),
              static_cast<unsigned long long>(result.fingerprint));
  for (const auto& v : result.violations) {
    std::printf("  %s\n", chaos::to_string(v).c_str());
  }
  if (repro.fingerprint != 0 && repro.fingerprint != result.fingerprint) {
    std::printf("  note: fingerprint differs from capture (0x%016llx) — the\n"
                "  code under test changed since the repro was recorded\n",
                static_cast<unsigned long long>(repro.fingerprint));
  }
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  log::set_threshold(args.opt.verbose ? log::Level::kInfo : log::Level::kError);
  // Fault storms repeat the same few lines thousands of times; cap each
  // message family and account for the rest in flush summaries.
  log::set_rate_limit(20);

  if (!args.replay.empty()) {
    const int rc = replay_file(args.replay);
    log::flush_suppressed();
    return rc;
  }

  std::error_code ec;
  std::filesystem::create_directories(args.sweep.out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "chaos_soak: cannot create %s: %s\n",
                 args.sweep.out_dir.c_str(), ec.message().c_str());
    return 2;
  }

  const auto sweep = [&](const runner::SweepOptions& opt,
                         const runner::ChaosSweepConfig& cfg) {
    return args.controller_faults ? runner::run_ha_sweep(cfg, opt)
                                  : runner::run_chaos_sweep(cfg, opt);
  };

  // Bench mode: a quiet serial pass first (no repro files, no narrative)
  // purely to measure the serial wall-clock the parallel pass is gated
  // against.
  std::uint64_t serial_wall_ns = 0;
  if (args.bench_speedup) {
    auto quiet = args.sweep;
    quiet.out_dir.clear();
    runner::SweepOptions serial;
    serial.workers = 1;
    serial_wall_ns = sweep(serial, quiet).total_wall_ns;
  }

  auto outcome = sweep(args.opt, args.sweep);

  if (args.bench_speedup && outcome.total_wall_ns > 0) {
    // Key named for tools/bench_compare.py: `speedup_` metrics gate
    // against the checked-in baseline with a lower tolerance band.
    outcome.report.set_result(
        "speedup_parallel",
        static_cast<double>(serial_wall_ns) /
            static_cast<double>(outcome.total_wall_ns));
    outcome.report.set_result("bench_workers",
                              static_cast<double>(args.opt.workers));
  }

  std::fputs(outcome.text.c_str(), stdout);
  std::fputs(outcome.errors.c_str(), stderr);
  log::flush_suppressed();

  const std::string report_path = args.sweep.out_dir + "/" +
                                  outcome.report.name() + ".json";
  if (!outcome.report.write(report_path)) {
    std::fprintf(stderr, "chaos_soak: cannot write %s\n", report_path.c_str());
  }

  if (args.controller_faults) {
    std::printf("%zu HA run(s), %zu with violations; report at %s\n",
                outcome.runs, outcome.violations, report_path.c_str());
  } else {
    std::printf("%zu run(s), %zu with violations; report at %s\n",
                outcome.runs, outcome.violations, report_path.c_str());
  }
  return outcome.ok() ? 0 : 1;
}
