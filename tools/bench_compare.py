#!/usr/bin/env python3
"""Diff BENCH_*.json run reports against checked-in baselines.

Reads tango.run_report.v1 files (see src/telemetry/run_report.h) and
compares their numeric `results` against a baseline copy of the same
report, with a relative tolerance band. Exit status is the CI gate.

Which metrics gate:

  * Keys starting with ``speedup_`` are machine-independent ratios
    (indexed implementation vs in-process reference). They gate by
    default: current must be >= baseline * (1 - tolerance).
  * Absolute metrics (``*_ops_per_sec``, latencies, counts) vary with
    host load, so they are reported but do NOT gate unless
    ``--gate-absolute`` is passed (then they use the same lower band).
  * A gated key present in the baseline but missing from the current
    report fails; keys new in the current report are listed, pass, and
    remind you to refresh the baseline.

Usage:
  tools/bench_compare.py --baselines bench/baselines --tolerance 0.25 \
      build/bench/BENCH_micro_tables.json [more reports...]

Exits non-zero on the first report whose gated metrics regress.
"""

import argparse
import json
import os
import sys


def load_results(path):
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "tango.run_report.v1":
        raise SystemExit(f"bench_compare: {path}: not a tango.run_report.v1 file")
    results = report.get("results", {})
    numeric = {k: v for k, v in results.items() if isinstance(v, (int, float))}
    return report.get("name", os.path.basename(path)), numeric


def is_gated(key, gate_absolute):
    return key.startswith("speedup_") or gate_absolute


def compare(name, current, baseline, tolerance, gate_absolute):
    failures = []
    rows = []
    for key in sorted(set(baseline) | set(current)):
        base = baseline.get(key)
        cur = current.get(key)
        gated = is_gated(key, gate_absolute)
        if base is None:
            rows.append((key, "-", f"{cur:.6g}", "-", "NEW (refresh baseline)"))
            continue
        if cur is None:
            status = "MISSING" if gated else "missing (ungated)"
            rows.append((key, f"{base:.6g}", "-", "-", status))
            if gated:
                failures.append(f"{key}: present in baseline, missing from current report")
            continue
        delta = (cur - base) / base if base != 0 else float("inf")
        floor = base * (1.0 - tolerance)
        if not gated:
            status = "info"
        elif cur >= floor:
            status = "ok"
        else:
            status = "REGRESSION"
            failures.append(
                f"{key}: {cur:.6g} < floor {floor:.6g} "
                f"(baseline {base:.6g}, tolerance {tolerance:.0%})")
        rows.append((key, f"{base:.6g}", f"{cur:.6g}", f"{delta:+.1%}", status))

    width = max(len(r[0]) for r in rows) if rows else 10
    print(f"== {name} (tolerance {tolerance:.0%}) ==")
    print(f"{'metric':<{width}}  {'baseline':>12}  {'current':>12}  {'delta':>8}  status")
    for key, base, cur, delta, status in rows:
        print(f"{key:<{width}}  {base:>12}  {cur:>12}  {delta:>8}  {status}")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("reports", nargs="+", help="current BENCH_*.json files")
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory holding baseline copies (same file names)")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed relative shortfall for gated metrics")
    ap.add_argument("--gate-absolute", action="store_true",
                    help="also gate absolute metrics (ops/sec etc.)")
    args = ap.parse_args()

    all_failures = []
    for path in args.reports:
        base_path = os.path.join(args.baselines, os.path.basename(path))
        if not os.path.exists(base_path):
            print(f"bench_compare: no baseline {base_path}; record one first",
                  file=sys.stderr)
            all_failures.append(f"{path}: missing baseline {base_path}")
            continue
        name, current = load_results(path)
        _, baseline = load_results(base_path)
        all_failures += compare(name, current, baseline,
                                args.tolerance, args.gate_absolute)

    if all_failures:
        print("\nbench_compare: FAIL", file=sys.stderr)
        for f in all_failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("\nbench_compare: OK")


if __name__ == "__main__":
    main()
