#!/usr/bin/env python3
"""Validate telemetry artifacts emitted by the benches.

Checks two things, with stdlib json only:

  1. A run report (BENCH_<name>.json) parses, carries the
     tango.run_report.v1 schema, and has every required top-level key.

  2. Optionally, a Chrome trace (BENCH_<name>.trace.json) parses, has
     well-formed trace events, and — when the report carries a
     trace_makespan_ns result — the per-switch lanes *reconstruct* that
     makespan: the latest end of any executor request span across the
     switch lanes, relative to the start of the controller's execute span,
     must equal the execute span's duration and the reported makespan.

With --chaos, the report is additionally validated as a chaos_soak sweep
report (CHAOS_soak.json): the chaos.* result keys must be present and
consistent with the per-run rows, and every violating run must reference
its repro file.

With --ha, the report is validated as a controller-fault sweep report
(HA_soak.json from chaos_soak --controller-faults): the ha.* result keys
must be present and consistent with the per-run rows (failover counts,
takeover latency, replication lag, stale-epoch rejections).

Usage:
  tools/validate_telemetry.py BENCH_fig10_network_wide.json \
      [BENCH_fig10_network_wide.trace.json]
  tools/validate_telemetry.py --chaos CHAOS_soak.json
  tools/validate_telemetry.py --ha HA_soak.json

Exits non-zero with a message on the first violation.
"""

import json
import sys

REPORT_SCHEMA = "tango.run_report.v1"
REPORT_KEYS = [
    "schema", "name", "results", "rows",
    "counters", "gauges", "histograms", "spans",
]
# Sim-time in the trace is microseconds with ns precision (3 decimals);
# allow one ns of slack per comparison.
EPS_US = 0.002


def fail(msg):
    print(f"validate_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_report(path):
    with open(path) as f:
        report = json.load(f)
    for key in REPORT_KEYS:
        if key not in report:
            fail(f"{path}: missing top-level key {key!r}")
    if report["schema"] != REPORT_SCHEMA:
        fail(f"{path}: schema {report['schema']!r} != {REPORT_SCHEMA!r}")
    for name, value in report["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} is not a non-negative integer")
    for name, h in report["histograms"].items():
        if len(h["counts"]) != len(h["bounds"]) + 1:
            fail(f"{path}: histogram {name!r}: counts/bounds length mismatch")
        if sum(h["counts"]) != h["count"]:
            fail(f"{path}: histogram {name!r}: bucket counts do not sum to count")
    for span in report["spans"]:
        for key in ("cat", "name", "lane", "begin_ns", "dur_ns"):
            if key not in span:
                fail(f"{path}: span missing key {key!r}")
    print(f"  report ok: {path} ({len(report['rows'])} rows, "
          f"{len(report['counters'])} counters, {len(report['spans'])} spans)")
    return report


def validate_trace(path, report):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")
    for ev in events:
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                fail(f"{path}: event missing key {key!r}: {ev}")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{path}: complete span missing dur: {ev}")

    lanes = {ev["args"]["name"]: ev["tid"] for ev in events
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    if 0 not in lanes.values():
        fail(f"{path}: no controller lane (tid 0) metadata")
    switch_lanes = {tid for tid in lanes.values() if tid != 0}
    if not switch_lanes:
        fail(f"{path}: no per-switch lanes")

    execute = [ev for ev in events
               if ev["ph"] == "X" and ev["name"] == "execute" and ev["tid"] == 0]
    if not execute:
        fail(f"{path}: no executor 'execute' span on the controller lane")
    run = execute[-1]

    # Reconstruct the makespan from the switch lanes alone: the last end of
    # any request span, measured from the execute span's start.
    requests = [ev for ev in events
                if ev["ph"] == "X" and ev["name"] == "request"
                and ev["tid"] in switch_lanes
                and ev["ts"] + ev["dur"] >= run["ts"] - EPS_US]
    if not requests:
        fail(f"{path}: no per-switch request spans inside the execute span")
    last_end = max(ev["ts"] + ev["dur"] for ev in requests)
    reconstructed_us = last_end - run["ts"]
    if abs(reconstructed_us - run["dur"]) > EPS_US:
        fail(f"{path}: per-switch lanes reconstruct {reconstructed_us:.3f} us "
             f"but the execute span reports {run['dur']:.3f} us")

    reported_ns = report.get("results", {}).get("trace_makespan_ns")
    if reported_ns is not None:
        if abs(reconstructed_us - reported_ns / 1e3) > EPS_US:
            fail(f"{path}: reconstructed makespan {reconstructed_us:.3f} us "
                 f"!= reported trace_makespan_ns {reported_ns / 1e3:.3f} us")
    print(f"  trace ok: {path} ({len(events)} events, "
          f"{len(switch_lanes)} switch lanes, "
          f"makespan {reconstructed_us / 1e6:.6f} s reconstructed)")


CHAOS_RESULT_KEYS = [
    "chaos.runs", "chaos.violations", "chaos.repros_written",
    "chaos.horizon", "chaos.seed_lo", "chaos.seed_hi",
    "chaos.sweep_fingerprint",
]
CHAOS_ROW_KEYS = ["seed", "workload", "policy", "events", "violations",
                  "makespan_ns"]
CHAOS_WORKLOADS = {"fig10", "te", "acl"}
CHAOS_POLICIES = {"roll-forward", "roll-back"}
CHAOS_HORIZONS = {"short", "medium", "long"}


def validate_fingerprint(path, results, key):
    fp = results[key]
    if not (isinstance(fp, str) and fp.startswith("0x") and len(fp) == 18):
        fail(f"{path}: {key} {fp!r} is not a 0x-prefixed 64-bit hex string")


def validate_wall(path, results, rows, prefix):
    """Opt-in wall-clock surfacing (--wall): when any wall field is present,
    the whole family must be, and every value must be a sane duration.
    These feed tools/bench_compare.py speedup gates, so garbage here would
    silently disarm a perf regression check."""
    keys = [f"{prefix}.wall_ms", f"{prefix}.sweep_wall_ms"]
    present = [k for k in keys if k in results]
    row_wall = any("wall_ms" in row for row in rows)
    if not present and not row_wall:
        return
    for key in keys:
        if key not in results:
            fail(f"{path}: wall-clock reporting is partial: missing {key!r}")
    for key in keys:
        if not isinstance(results[key], (int, float)) or results[key] < 0:
            fail(f"{path}: {key} is not a non-negative number")
    for i, row in enumerate(rows):
        if "wall_ms" not in row:
            fail(f"{path}: row {i}: missing wall_ms while sweep reports wall")
        if row["wall_ms"] < 0:
            fail(f"{path}: row {i}: negative wall_ms")
    speedup = results.get("speedup_parallel")
    if speedup is not None and (not isinstance(speedup, (int, float))
                                or speedup <= 0):
        fail(f"{path}: speedup_parallel must be a positive number")


def validate_chaos(path, report):
    results = report.get("results", {})
    for key in CHAOS_RESULT_KEYS:
        if key not in results:
            fail(f"{path}: missing chaos result key {key!r}")
    if results["chaos.horizon"] not in CHAOS_HORIZONS:
        fail(f"{path}: chaos.horizon {results['chaos.horizon']!r} invalid")
    if results["chaos.seed_lo"] > results["chaos.seed_hi"]:
        fail(f"{path}: chaos.seed_lo > chaos.seed_hi")

    rows = report["rows"]
    if results["chaos.runs"] != len(rows):
        fail(f"{path}: chaos.runs {results['chaos.runs']} != {len(rows)} rows")
    violating = 0
    for i, row in enumerate(rows):
        for key in CHAOS_ROW_KEYS:
            if key not in row:
                fail(f"{path}: row {i}: missing key {key!r}")
        if row["workload"] not in CHAOS_WORKLOADS:
            fail(f"{path}: row {i}: workload {row['workload']!r} invalid")
        if row["policy"] not in CHAOS_POLICIES:
            fail(f"{path}: row {i}: policy {row['policy']!r} invalid")
        if not (results["chaos.seed_lo"] <= row["seed"]
                <= results["chaos.seed_hi"]):
            fail(f"{path}: row {i}: seed {row['seed']} outside sweep range")
        if row["violations"] < 0 or row["makespan_ns"] < 0:
            fail(f"{path}: row {i}: negative count")
        if row["violations"] > 0:
            violating += 1
            if "repro" not in row:
                fail(f"{path}: row {i}: violating run has no repro reference")
    if results["chaos.violations"] != violating:
        fail(f"{path}: chaos.violations {results['chaos.violations']} != "
             f"{violating} rows with violations")
    validate_fingerprint(path, results, "chaos.sweep_fingerprint")
    validate_wall(path, results, rows, "chaos")
    print(f"  chaos ok: {path} ({len(rows)} runs, {violating} with violations, "
          f"horizon {results['chaos.horizon']})")


HA_RESULT_KEYS = [
    "ha.runs", "ha.violations", "ha.failover_count",
    "ha.takeover_ms_max", "ha.replication_lag_ns_max",
    "ha.stale_epoch_rejections", "ha.horizon", "ha.seed_lo", "ha.seed_hi",
    "ha.sweep_fingerprint",
]
HA_ROW_KEYS = ["seed", "workload", "policy", "scenario", "failovers",
               "takeover_ms", "replication_lag_ns", "stale_epoch_rejections",
               "violations"]
HA_SCENARIOS = {"controller_crash", "controller_partition", "replication_loss",
                "crash_during_takeover", "crash_after_commit"}


def validate_ha(path, report):
    results = report.get("results", {})
    for key in HA_RESULT_KEYS:
        if key not in results:
            fail(f"{path}: missing ha result key {key!r}")
    if results["ha.horizon"] not in CHAOS_HORIZONS:
        fail(f"{path}: ha.horizon {results['ha.horizon']!r} invalid")
    if results["ha.seed_lo"] > results["ha.seed_hi"]:
        fail(f"{path}: ha.seed_lo > ha.seed_hi")

    rows = report["rows"]
    if results["ha.runs"] != len(rows):
        fail(f"{path}: ha.runs {results['ha.runs']} != {len(rows)} rows")
    violating = 0
    failovers = 0
    rejections = 0
    takeover_ms_max = 0.0
    lag_ns_max = 0.0
    for i, row in enumerate(rows):
        for key in HA_ROW_KEYS:
            if key not in row:
                fail(f"{path}: row {i}: missing key {key!r}")
        if row["workload"] not in CHAOS_WORKLOADS:
            fail(f"{path}: row {i}: workload {row['workload']!r} invalid")
        if row["policy"] not in CHAOS_POLICIES:
            fail(f"{path}: row {i}: policy {row['policy']!r} invalid")
        if row["scenario"] not in HA_SCENARIOS:
            fail(f"{path}: row {i}: scenario {row['scenario']!r} invalid")
        if not (results["ha.seed_lo"] <= row["seed"] <= results["ha.seed_hi"]):
            fail(f"{path}: row {i}: seed {row['seed']} outside sweep range")
        for key in ("failovers", "takeover_ms", "replication_lag_ns",
                    "stale_epoch_rejections", "violations"):
            if row[key] < 0:
                fail(f"{path}: row {i}: negative {key}")
        # A scenario run that held its oracles always failed over at least
        # once (double failover counts twice).
        expected = 2 if row["scenario"] == "crash_during_takeover" else 1
        if row["violations"] == 0 and row["failovers"] != expected:
            fail(f"{path}: row {i}: clean {row['scenario']} run has "
                 f"{row['failovers']} failovers, expected {expected}")
        violating += 1 if row["violations"] > 0 else 0
        failovers += row["failovers"]
        rejections += row["stale_epoch_rejections"]
        takeover_ms_max = max(takeover_ms_max, row["takeover_ms"])
        lag_ns_max = max(lag_ns_max, row["replication_lag_ns"])
    if results["ha.violations"] != violating:
        fail(f"{path}: ha.violations {results['ha.violations']} != "
             f"{violating} rows with violations")
    if results["ha.failover_count"] != failovers:
        fail(f"{path}: ha.failover_count {results['ha.failover_count']} != "
             f"{failovers} summed from rows")
    if results["ha.stale_epoch_rejections"] != rejections:
        fail(f"{path}: ha.stale_epoch_rejections "
             f"{results['ha.stale_epoch_rejections']} != {rejections} summed")
    if abs(results["ha.takeover_ms_max"] - takeover_ms_max) > 1e-6:
        fail(f"{path}: ha.takeover_ms_max {results['ha.takeover_ms_max']} != "
             f"{takeover_ms_max} from rows")
    if abs(results["ha.replication_lag_ns_max"] - lag_ns_max) > 1e-6:
        fail(f"{path}: ha.replication_lag_ns_max "
             f"{results['ha.replication_lag_ns_max']} != {lag_ns_max} from rows")
    validate_fingerprint(path, results, "ha.sweep_fingerprint")
    validate_wall(path, results, rows, "ha")
    print(f"  ha ok: {path} ({len(rows)} runs, {violating} with violations, "
          f"{failovers} failovers, max takeover {takeover_ms_max:.3f} ms)")


def main(argv):
    args = list(argv[1:])
    chaos = "--chaos" in args
    if chaos:
        args.remove("--chaos")
    ha = "--ha" in args
    if ha:
        args.remove("--ha")
    if len(args) < 1 or len(args) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    report = validate_report(args[0])
    if chaos:
        validate_chaos(args[0], report)
    if ha:
        validate_ha(args[0], report)
    if len(args) == 2:
        validate_trace(args[1], report)
    print("validate_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
