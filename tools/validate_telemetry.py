#!/usr/bin/env python3
"""Validate telemetry artifacts emitted by the benches.

Checks two things, with stdlib json only:

  1. A run report (BENCH_<name>.json) parses, carries the
     tango.run_report.v1 schema, and has every required top-level key.

  2. Optionally, a Chrome trace (BENCH_<name>.trace.json) parses, has
     well-formed trace events, and — when the report carries a
     trace_makespan_ns result — the per-switch lanes *reconstruct* that
     makespan: the latest end of any executor request span across the
     switch lanes, relative to the start of the controller's execute span,
     must equal the execute span's duration and the reported makespan.

With --chaos, the report is additionally validated as a chaos_soak sweep
report (CHAOS_soak.json): the chaos.* result keys must be present and
consistent with the per-run rows, and every violating run must reference
its repro file.

Usage:
  tools/validate_telemetry.py BENCH_fig10_network_wide.json \
      [BENCH_fig10_network_wide.trace.json]
  tools/validate_telemetry.py --chaos CHAOS_soak.json

Exits non-zero with a message on the first violation.
"""

import json
import sys

REPORT_SCHEMA = "tango.run_report.v1"
REPORT_KEYS = [
    "schema", "name", "results", "rows",
    "counters", "gauges", "histograms", "spans",
]
# Sim-time in the trace is microseconds with ns precision (3 decimals);
# allow one ns of slack per comparison.
EPS_US = 0.002


def fail(msg):
    print(f"validate_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_report(path):
    with open(path) as f:
        report = json.load(f)
    for key in REPORT_KEYS:
        if key not in report:
            fail(f"{path}: missing top-level key {key!r}")
    if report["schema"] != REPORT_SCHEMA:
        fail(f"{path}: schema {report['schema']!r} != {REPORT_SCHEMA!r}")
    for name, value in report["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} is not a non-negative integer")
    for name, h in report["histograms"].items():
        if len(h["counts"]) != len(h["bounds"]) + 1:
            fail(f"{path}: histogram {name!r}: counts/bounds length mismatch")
        if sum(h["counts"]) != h["count"]:
            fail(f"{path}: histogram {name!r}: bucket counts do not sum to count")
    for span in report["spans"]:
        for key in ("cat", "name", "lane", "begin_ns", "dur_ns"):
            if key not in span:
                fail(f"{path}: span missing key {key!r}")
    print(f"  report ok: {path} ({len(report['rows'])} rows, "
          f"{len(report['counters'])} counters, {len(report['spans'])} spans)")
    return report


def validate_trace(path, report):
    with open(path) as f:
        trace = json.load(f)
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")
    for ev in events:
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                fail(f"{path}: event missing key {key!r}: {ev}")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{path}: complete span missing dur: {ev}")

    lanes = {ev["args"]["name"]: ev["tid"] for ev in events
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    if 0 not in lanes.values():
        fail(f"{path}: no controller lane (tid 0) metadata")
    switch_lanes = {tid for tid in lanes.values() if tid != 0}
    if not switch_lanes:
        fail(f"{path}: no per-switch lanes")

    execute = [ev for ev in events
               if ev["ph"] == "X" and ev["name"] == "execute" and ev["tid"] == 0]
    if not execute:
        fail(f"{path}: no executor 'execute' span on the controller lane")
    run = execute[-1]

    # Reconstruct the makespan from the switch lanes alone: the last end of
    # any request span, measured from the execute span's start.
    requests = [ev for ev in events
                if ev["ph"] == "X" and ev["name"] == "request"
                and ev["tid"] in switch_lanes
                and ev["ts"] + ev["dur"] >= run["ts"] - EPS_US]
    if not requests:
        fail(f"{path}: no per-switch request spans inside the execute span")
    last_end = max(ev["ts"] + ev["dur"] for ev in requests)
    reconstructed_us = last_end - run["ts"]
    if abs(reconstructed_us - run["dur"]) > EPS_US:
        fail(f"{path}: per-switch lanes reconstruct {reconstructed_us:.3f} us "
             f"but the execute span reports {run['dur']:.3f} us")

    reported_ns = report.get("results", {}).get("trace_makespan_ns")
    if reported_ns is not None:
        if abs(reconstructed_us - reported_ns / 1e3) > EPS_US:
            fail(f"{path}: reconstructed makespan {reconstructed_us:.3f} us "
                 f"!= reported trace_makespan_ns {reported_ns / 1e3:.3f} us")
    print(f"  trace ok: {path} ({len(events)} events, "
          f"{len(switch_lanes)} switch lanes, "
          f"makespan {reconstructed_us / 1e6:.6f} s reconstructed)")


CHAOS_RESULT_KEYS = [
    "chaos.runs", "chaos.violations", "chaos.repros_written",
    "chaos.horizon", "chaos.seed_lo", "chaos.seed_hi",
]
CHAOS_ROW_KEYS = ["seed", "workload", "policy", "events", "violations",
                  "makespan_ns"]
CHAOS_WORKLOADS = {"fig10", "te", "acl"}
CHAOS_POLICIES = {"roll-forward", "roll-back"}
CHAOS_HORIZONS = {"short", "medium", "long"}


def validate_chaos(path, report):
    results = report.get("results", {})
    for key in CHAOS_RESULT_KEYS:
        if key not in results:
            fail(f"{path}: missing chaos result key {key!r}")
    if results["chaos.horizon"] not in CHAOS_HORIZONS:
        fail(f"{path}: chaos.horizon {results['chaos.horizon']!r} invalid")
    if results["chaos.seed_lo"] > results["chaos.seed_hi"]:
        fail(f"{path}: chaos.seed_lo > chaos.seed_hi")

    rows = report["rows"]
    if results["chaos.runs"] != len(rows):
        fail(f"{path}: chaos.runs {results['chaos.runs']} != {len(rows)} rows")
    violating = 0
    for i, row in enumerate(rows):
        for key in CHAOS_ROW_KEYS:
            if key not in row:
                fail(f"{path}: row {i}: missing key {key!r}")
        if row["workload"] not in CHAOS_WORKLOADS:
            fail(f"{path}: row {i}: workload {row['workload']!r} invalid")
        if row["policy"] not in CHAOS_POLICIES:
            fail(f"{path}: row {i}: policy {row['policy']!r} invalid")
        if not (results["chaos.seed_lo"] <= row["seed"]
                <= results["chaos.seed_hi"]):
            fail(f"{path}: row {i}: seed {row['seed']} outside sweep range")
        if row["violations"] < 0 or row["makespan_ns"] < 0:
            fail(f"{path}: row {i}: negative count")
        if row["violations"] > 0:
            violating += 1
            if "repro" not in row:
                fail(f"{path}: row {i}: violating run has no repro reference")
    if results["chaos.violations"] != violating:
        fail(f"{path}: chaos.violations {results['chaos.violations']} != "
             f"{violating} rows with violations")
    print(f"  chaos ok: {path} ({len(rows)} runs, {violating} with violations, "
          f"horizon {results['chaos.horizon']})")


def main(argv):
    args = list(argv[1:])
    chaos = "--chaos" in args
    if chaos:
        args.remove("--chaos")
    if len(args) < 1 or len(args) > 2:
        print(__doc__, file=sys.stderr)
        return 2
    report = validate_report(args[0])
    if chaos:
        validate_chaos(args[0], report)
    if len(args) == 2:
        validate_trace(args[1], report)
    print("validate_telemetry: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
